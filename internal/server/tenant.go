package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Multi-tenant identity. Every solve request belongs to a tenant and a
// priority class. JSON clients name theirs with the X-Doconsider-Tenant
// header; binary clients may additionally carry a tenant section in the
// frame (section 17), which is authoritative for attribution once the
// frame is decoded — the header still drives admission, which runs
// before the body is read. Requests that name no tenant belong to the
// "default" tenant in the batch class, which reproduces the pre-tenant
// server behavior exactly.
//
// Tenants are created on first use. The registry caps how many distinct
// tenants get their own accounting (Config.Tenant.Max); traffic beyond
// the cap is lumped into the shared "other" tenant so a client fanning
// out random tenant names cannot grow /metrics without bound.

// TenantHeader names the requesting tenant on POST /v1/trisolve:
//
//	X-Doconsider-Tenant: analytics
//	X-Doconsider-Tenant: frontend;class=latency
//
// The optional class parameter selects the priority class (default
// batch). Tenant names are 1-64 bytes of [A-Za-z0-9._-].
const TenantHeader = "X-Doconsider-Tenant"

// DefaultTenant is the tenant of requests that name none.
const DefaultTenant = "default"

// OverflowTenant absorbs tenants beyond the Tenant.Max cardinality cap.
const OverflowTenant = "other"

// Class is a request priority class. Latency-class requests are never
// sealed behind a batch coalescing window (the class is part of the
// coalescing key) and are granted admission ahead of batch waiters.
type Class uint8

const (
	// ClassBatch is the default: throughput traffic that tolerates the
	// full coalescing window.
	ClassBatch Class = iota
	// ClassLatency marks latency-sensitive traffic: short coalescing
	// windows and priority in the admission queue.
	ClassLatency

	numClasses = 2
)

// String returns the stable metric-label name of the class.
func (c Class) String() string {
	if c == ClassLatency {
		return "latency"
	}
	return "batch"
}

// ParseClass parses a class name ("batch" or "latency").
func ParseClass(s string) (Class, error) {
	switch s {
	case "batch":
		return ClassBatch, nil
	case "latency":
		return ClassLatency, nil
	}
	return 0, fmt.Errorf("unknown class %q (want latency or batch)", s)
}

// maxTenantNameLen bounds tenant names on both wires (the inline trace
// field truncates longer names; the wire rejects them outright).
const maxTenantNameLen = 64

// validTenantNameByte reports whether b may appear in a tenant name.
func validTenantNameByte(b byte) bool {
	switch {
	case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b >= '0' && b <= '9':
		return true
	case b == '.' || b == '_' || b == '-':
		return true
	}
	return false
}

// validateTenantNameBytes checks a tenant name without allocating (the
// binary path validates the frame section's payload view in place).
func validateTenantNameBytes(name []byte) error {
	if len(name) == 0 {
		return fmt.Errorf("empty tenant name")
	}
	if len(name) > maxTenantNameLen {
		return fmt.Errorf("tenant name has %d bytes, limit %d", len(name), maxTenantNameLen)
	}
	for _, b := range name {
		if !validTenantNameByte(b) {
			return fmt.Errorf("tenant name contains %q (want [A-Za-z0-9._-])", b)
		}
	}
	return nil
}

// parseTenantHeader resolves the X-Doconsider-Tenant header value: a
// tenant name with an optional ";class=latency|batch" parameter. An
// empty header is the default tenant in the batch class.
func parseTenantHeader(h string) (string, Class, error) {
	if h == "" {
		return DefaultTenant, ClassBatch, nil
	}
	name, class := h, ClassBatch
	if i := strings.IndexByte(h, ';'); i >= 0 {
		name = strings.TrimSpace(h[:i])
		param := strings.TrimSpace(h[i+1:])
		const pfx = "class="
		if !strings.HasPrefix(param, pfx) {
			return "", 0, fmt.Errorf("malformed %s parameter %q (want class=latency or class=batch)", TenantHeader, param)
		}
		var err error
		if class, err = ParseClass(param[len(pfx):]); err != nil {
			return "", 0, err
		}
	}
	if err := validateTenantNameBytes([]byte(name)); err != nil {
		return "", 0, err
	}
	return name, class, nil
}

// tenantState is one tenant's identity, QoS parameters, and accounting.
// The admission-scheduler fields (inFlight, deficit, queue, qlen,
// inRing) are guarded by the admission mutex; the metric fields are
// lock-free.
type tenantState struct {
	name   string
	weight int // deficit-round-robin quantum (grants per rotation)
	quota  int // concurrent-solve cap; 0 = bounded only by MaxInFlight

	// Admission state, guarded by admission.mu.
	inFlight int
	deficit  int
	queue    [numClasses][]*waiter
	qlen     int
	inRing   bool

	// Accounting.
	accepted  *Counter
	shed      *Counter
	classReq  [numClasses]*Counter
	inFlightG *Gauge
	latH      *Histogram
}

// observe attributes one finished solve to the tenant: the class
// counter and the latency histogram. Lock-free and allocation-free —
// it runs inside the warm binary path's 0 allocs/op boundary.
func (t *tenantState) observe(class Class, totalNs int64) {
	t.classReq[class].Inc()
	t.latH.Observe(float64(totalNs) / 1e9)
}

// tenantRegistry maps tenant names to their state, creating tenants on
// first use up to the cardinality cap.
type tenantRegistry struct {
	reg     *Registry
	max     int
	weights map[string]int
	quotas  map[string]int
	quota   int // default per-tenant quota; 0 = none

	mu       sync.RWMutex
	byName   map[string]*tenantState
	list     []*tenantState
	def      *tenantState
	overflow *tenantState // lazily created when the cap is reached
}

func newTenantRegistry(reg *Registry, cfg Config) *tenantRegistry {
	r := &tenantRegistry{
		reg:     reg,
		max:     cfg.Tenant.Max,
		weights: cfg.Tenant.Weights,
		quotas:  cfg.Tenant.Quotas,
		quota:   cfg.Tenant.Quota,
		byName:  make(map[string]*tenantState),
	}
	r.def = r.createLocked(DefaultTenant)
	return r
}

// resolve returns the tenant for name, creating it if the cardinality
// cap allows and lumping it into the overflow tenant otherwise.
func (r *tenantRegistry) resolve(name string) *tenantState {
	r.mu.RLock()
	t := r.byName[name]
	r.mu.RUnlock()
	if t != nil {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t := r.byName[name]; t != nil {
		return t
	}
	if len(r.list) >= r.max {
		if r.overflow == nil {
			r.overflow = r.newState(OverflowTenant)
			r.list = append(r.list, r.overflow)
		}
		return r.overflow
	}
	return r.createLocked(name)
}

// resolveBytes is resolve keyed by a byte-slice view into the request
// frame. The warm path — a known tenant — performs no allocation: the
// map lookup with an inline string conversion compiles to a no-copy
// probe, and only the cold create path materializes the string.
func (r *tenantRegistry) resolveBytes(name []byte) *tenantState {
	r.mu.RLock()
	t := r.byName[string(name)]
	r.mu.RUnlock()
	if t != nil {
		return t
	}
	return r.resolve(string(name))
}

func (r *tenantRegistry) createLocked(name string) *tenantState {
	t := r.newState(name)
	r.byName[name] = t
	r.list = append(r.list, t)
	return t
}

func (r *tenantRegistry) newState(name string) *tenantState {
	weight := r.weights[name]
	if weight < 1 {
		weight = 1
	}
	quota, ok := r.quotas[name]
	if !ok {
		quota = r.quota
	}
	if quota < 0 {
		quota = 0
	}
	lbl := Labels{{"tenant", name}}
	t := &tenantState{
		name:      name,
		weight:    weight,
		quota:     quota,
		accepted:  r.reg.Counter("loops_tenant_accepted_total", "solve requests admitted, by tenant", lbl),
		shed:      r.reg.Counter("loops_tenant_shed_total", "solve requests shed, by tenant", lbl),
		inFlightG: r.reg.Gauge("loops_tenant_in_flight", "solve requests currently admitted, by tenant", lbl),
		latH: r.reg.Histogram("loops_tenant_request_seconds", "solve request latency by tenant",
			lbl, DefaultLatencyBuckets),
	}
	for c := 0; c < numClasses; c++ {
		t.classReq[c] = r.reg.Counter("loops_tenant_requests_total", "solve requests by tenant and class",
			Labels{{"tenant", name}, {"class", Class(c).String()}})
	}
	return t
}

// snapshot returns the registered tenants, sorted by name (for stats).
func (r *tenantRegistry) snapshot() []*tenantState {
	r.mu.RLock()
	out := append([]*tenantState(nil), r.list...)
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// TenantStats is one tenant's /v1/stats breakdown.
type TenantStats struct {
	Name            string  `json:"name"`
	Weight          int     `json:"weight"`
	Quota           int     `json:"quota,omitempty"` // 0 = unbounded
	InFlight        int64   `json:"in_flight"`
	Queued          int     `json:"queued"`
	Accepted        uint64  `json:"accepted"`
	Shed            uint64  `json:"shed"`
	LatencyRequests uint64  `json:"latency_requests"`
	BatchRequests   uint64  `json:"batch_requests"`
	P50Ms           float64 `json:"p50_ms"`
	P99Ms           float64 `json:"p99_ms"`
}
