package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"
)

// postTenant posts a JSON solve request with a tenant header and
// returns the status, the decoded error body (non-200) and the
// Retry-After header value.
func postTenant(t *testing.T, url, tenantHeader string, body []byte) (int, errorResponse, string) {
	t.Helper()
	req, err := http.NewRequest("POST", url+"/v1/trisolve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenantHeader != "" {
		req.Header.Set(TenantHeader, tenantHeader)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e errorResponse
	if resp.StatusCode != http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("status %d with undecodable error body: %v", resp.StatusCode, err)
		}
	}
	return resp.StatusCode, e, resp.Header.Get("Retry-After")
}

// postFrameHdr is postFrame plus response headers.
func postFrameHdr(t *testing.T, url string, frame []byte) (int, *WireResponse, http.Header) {
	t.Helper()
	resp, err := http.Post(url+"/v1/trisolve", FrameContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != FrameContentType {
		t.Fatalf("response content type %q, want %q", ct, FrameContentType)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	wr, err := DecodeResponseFrame(buf.Bytes())
	if err != nil {
		t.Fatalf("decoding response frame (status %d): %v", resp.StatusCode, err)
	}
	return resp.StatusCode, wr, resp.Header
}

// TestNegativeTimeoutRejectedBothWires pins the bugfix for silently
// ignored negative timeouts: both the JSON timeout_ms field and the
// DCWF timeout section must reject a negative value with 400.
func TestNegativeTimeoutRejectedBothWires(t *testing.T) {
	_, ts := newTestServer(t, Config{Procs: 1})
	l := testFactor(8)
	lower := true
	req := &SolveRequest{N: l.N, RowPtr: l.RowPtr, ColIdx: l.ColIdx, Val: l.Val,
		Lower: &lower, B: [][]float64{randVec(l.N, 1)}, TimeoutMs: -5}

	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	status, e, _ := postTenant(t, ts.URL, "", body)
	if status != http.StatusBadRequest {
		t.Fatalf("JSON negative timeout: status %d, want 400", status)
	}
	if e.Error == "" {
		t.Fatal("JSON negative timeout: empty error message")
	}

	frame, err := EncodeRequestFrame(req)
	if err != nil {
		t.Fatal(err)
	}
	bstatus, wr := postFrame(t, ts.URL, frame)
	if bstatus != http.StatusBadRequest {
		t.Fatalf("binary negative timeout: status %d, want 400", bstatus)
	}
	if wr.ErrMsg == "" {
		t.Fatal("binary negative timeout: empty error message")
	}
}

// TestShedResponseBothWires pins the honest-shedding contract of a 429:
// a derived Retry-After header on both wires (satellite of the
// hard-coded "Retry-After: 1" bug), a trace_id echo in the error body,
// an admission-stage stamped trace in the ring, and the shed counted in
// the per-wire endpoint metrics.
func TestShedResponseBothWires(t *testing.T) {
	// TenantQueue: -1 disables queueing so the second request sheds
	// immediately instead of parking.
	s, ts := newTestServer(t, Config{Procs: 1, Admission: AdmissionConfig{MaxInFlight: 1, Queue: -1}})
	l := testFactor(8)
	body := solveBody(t, l, true, [][]float64{randVec(l.N, 1)})
	_, finish := stallRequest(t, ts.URL, body)
	defer finish()
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.inFlight() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	// JSON wire.
	status, e, retry := postTenant(t, ts.URL, "shedme", body)
	if status != http.StatusTooManyRequests {
		t.Fatalf("JSON shed: status %d, want 429", status)
	}
	if n, err := strconv.Atoi(retry); err != nil || n < 1 {
		t.Fatalf("JSON shed: Retry-After %q, want an integer >= 1", retry)
	}
	if len(e.TraceID) != 16 {
		t.Fatalf("JSON shed: trace_id %q, want 16 hex digits", e.TraceID)
	}

	// Binary wire: the regression this pins is the binary path shedding
	// without a Retry-After (and without any frame body at all).
	lower := true
	frame, err := EncodeRequestFrame(&SolveRequest{N: l.N, RowPtr: l.RowPtr, ColIdx: l.ColIdx,
		Val: l.Val, Lower: &lower, B: [][]float64{randVec(l.N, 2)}})
	if err != nil {
		t.Fatal(err)
	}
	bstatus, wr, hdr := postFrameHdr(t, ts.URL, frame)
	if bstatus != http.StatusTooManyRequests {
		t.Fatalf("binary shed: status %d, want 429", bstatus)
	}
	if n, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || n < 1 {
		t.Fatalf("binary shed: Retry-After %q, want an integer >= 1", hdr.Get("Retry-After"))
	}
	if wr.ErrMsg == "" || len(wr.TraceID) != 16 {
		t.Fatalf("binary shed: error frame = msg %q trace %q, want both populated", wr.ErrMsg, wr.TraceID)
	}

	// Both sheds are traced with the whole rejection charged to the
	// admission stage, carrying the tenant that was refused.
	traces := s.tracer.ring.Snapshot(0)
	seen := map[string]bool{}
	for i := range traces {
		tr := &traces[i]
		if tr.Status != http.StatusTooManyRequests {
			continue
		}
		tj := traceJSON(tr)
		if tj.Stages["admission"] != tj.TotalMs {
			t.Fatalf("shed trace (%s): admission stage %.3fms of %.3fms total, want all of it",
				tj.Wire, tj.Stages["admission"], tj.TotalMs)
		}
		seen[tj.Wire] = true
		if tj.Wire == "json" {
			if tj.Tenant != "shedme" || tj.Class != "batch" {
				t.Fatalf("JSON shed trace tenant/class = %q/%q, want shedme/batch", tj.Tenant, tj.Class)
			}
			if tj.TraceID != e.TraceID {
				t.Fatalf("JSON shed trace id %q, body echoed %q", tj.TraceID, e.TraceID)
			}
		}
	}
	if !seen["json"] || !seen["binary"] {
		t.Fatalf("shed traces by wire = %v, want both json and binary", seen)
	}

	// And the per-wire endpoint metrics counted them.
	if got := s.solveJSONEP.codes[429].Value(); got != 1 {
		t.Fatalf("JSON endpoint 429 counter = %d, want 1", got)
	}
	if got := s.solveBinEP.codes[429].Value(); got != 1 {
		t.Fatalf("binary endpoint 429 counter = %d, want 1", got)
	}
	if got := s.solveBinEP.hist.Count(); got < 1 {
		t.Fatal("binary endpoint latency histogram did not observe the shed")
	}

	// Tenant accounting: the JSON shed was attributed to its tenant.
	if got := s.tenants.resolve("shedme").shed.Value(); got != 1 {
		t.Fatalf("tenant shed counter = %d, want 1", got)
	}
}

// TestDraining503EchoesTraceID pins the drain-path trace contract on
// both wires: a 503 carries a trace_id and lands in the ring with the
// admission stamp.
func TestDraining503EchoesTraceID(t *testing.T) {
	s, ts := newTestServer(t, Config{Procs: 1})
	s.draining.Store(true)
	defer s.draining.Store(false)
	l := testFactor(8)
	body := solveBody(t, l, true, [][]float64{randVec(l.N, 1)})
	status, e, _ := postTenant(t, ts.URL, "", body)
	if status != http.StatusServiceUnavailable || len(e.TraceID) != 16 {
		t.Fatalf("JSON drain: status %d trace %q, want 503 with a trace id", status, e.TraceID)
	}
	lower := true
	frame, err := EncodeRequestFrame(&SolveRequest{N: l.N, RowPtr: l.RowPtr, ColIdx: l.ColIdx,
		Val: l.Val, Lower: &lower, B: [][]float64{randVec(l.N, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	bstatus, wr := postFrame(t, ts.URL, frame)
	if bstatus != http.StatusServiceUnavailable || len(wr.TraceID) != 16 {
		t.Fatalf("binary drain: status %d trace %q, want 503 with a trace id", bstatus, wr.TraceID)
	}
	found := false
	for _, tr := range s.tracer.ring.Snapshot(0) {
		if tr.Status == http.StatusServiceUnavailable {
			found = true
		}
	}
	if !found {
		t.Fatal("no 503 trace in the ring")
	}
}

// TestTenantHeaderRejectedBothWires checks malformed tenant headers are
// rejected with 400 before any body is read, on both wires.
func TestTenantHeaderRejectedBothWires(t *testing.T) {
	_, ts := newTestServer(t, Config{Procs: 1})
	l := testFactor(8)
	body := solveBody(t, l, true, [][]float64{randVec(l.N, 1)})
	status, e, _ := postTenant(t, ts.URL, "bad tenant name", body)
	if status != http.StatusBadRequest || e.Error == "" {
		t.Fatalf("JSON bad tenant header: status %d error %q, want 400", status, e.Error)
	}
	lower := true
	frame, err := EncodeRequestFrame(&SolveRequest{N: l.N, RowPtr: l.RowPtr, ColIdx: l.ColIdx,
		Val: l.Val, Lower: &lower, B: [][]float64{randVec(l.N, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/v1/trisolve", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", FrameContentType)
	req.Header.Set(TenantHeader, "also;class=wat")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("binary bad tenant header: status %d, want 400", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != FrameContentType {
		t.Fatalf("binary bad tenant header answered on the %q wire, want a frame", ct)
	}
}

// TestTenantAttributionBothWires checks solves land in the right
// tenant's stats: the JSON path from the header, the binary path from
// the frame's tenant section (which overrides the header attribution).
func TestTenantAttributionBothWires(t *testing.T) {
	s, ts := newTestServer(t, Config{Procs: 1})
	l := testFactor(8)
	body := solveBody(t, l, true, [][]float64{randVec(l.N, 1)})
	if status, _, _ := postTenant(t, ts.URL, "jsonten;class=latency", body); status != http.StatusOK {
		t.Fatalf("JSON tenant solve: status %d", status)
	}
	lower := true
	frame, err := EncodeRequestFrame(&SolveRequest{N: l.N, RowPtr: l.RowPtr, ColIdx: l.ColIdx,
		Val: l.Val, Lower: &lower, B: [][]float64{randVec(l.N, 1)},
		Tenant: "binten", Class: "latency"})
	if err != nil {
		t.Fatal(err)
	}
	if status, _ := postFrame(t, ts.URL, frame); status != http.StatusOK {
		t.Fatalf("binary tenant solve: status %d", status)
	}
	st := s.Stats()
	byName := map[string]TenantStats{}
	for _, ten := range st.Tenants {
		byName[ten.Name] = ten
	}
	if got := byName["jsonten"]; got.LatencyRequests != 1 {
		t.Fatalf("jsonten stats = %+v, want one latency request", got)
	}
	if got := byName["binten"]; got.LatencyRequests != 1 {
		t.Fatalf("binten stats = %+v, want one latency request", got)
	}
	if _, ok := byName[DefaultTenant]; !ok {
		t.Fatal("default tenant missing from stats")
	}

	// The per-tenant metric families render with {tenant} labels.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"loops_tenant_requests_total", `tenant="jsonten"`, `tenant="binten"`, "loops_admission_queued", "loops_coalesce_window_ns"} {
		if !bytes.Contains([]byte(text), []byte(want)) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// TestCoalesceClassSeparation pins the tentpole isolation property: a
// latency-class request never shares a group (or a window) with batch
// traffic of the same structure, because the class is part of the
// coalescing key.
func TestCoalesceClassSeparation(t *testing.T) {
	c := newTestCoalescer(t, 40*time.Millisecond, 64)
	l := testFactor(10)

	var wg sync.WaitGroup
	infos := make([]SolveInfo, 3)
	errs := make([]error, 3)
	submit := func(i int, class Class, seed int64) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bs := [][]float64{randVec(l.N, seed)}
			xs := [][]float64{make([]float64, l.N)}
			req := &coReq{l: l, lower: true, class: class, xs: xs, bs: bs}
			infos[i], errs[i] = c.SubmitInto(context.Background(), req)
		}()
	}
	submit(0, ClassBatch, 1)
	submit(1, ClassBatch, 2)
	// Wait until both batch requests are parked in their window before
	// the latency request arrives, so fusion would be possible if the
	// class were not part of the key.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		parked := c.parked
		c.mu.Unlock()
		if parked == 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	submit(2, ClassLatency, 3)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if infos[0].Fused != 2 || infos[1].Fused != 2 {
		t.Fatalf("batch requests fused %d/%d, want 2/2", infos[0].Fused, infos[1].Fused)
	}
	if infos[2].Fused != 1 {
		t.Fatalf("latency request fused with batch traffic (fused=%d), want a separate pass", infos[2].Fused)
	}
}

// TestWindowForAdapts pins the load-adaptive window ramp: a fast
// arrival stream keeps the full window, a trickle collapses it to zero
// (run solo), and the midpoint interpolates linearly.
func TestWindowForAdapts(t *testing.T) {
	c := newTestCoalescer(t, 0, 64)
	base := 1 * time.Millisecond
	c.windows[ClassBatch] = base

	set := func(ivNs int64) { c.arrival[ClassBatch].ivNs.Store(ivNs) }
	set(0) // no signal yet: full window, so idle bursts still coalesce
	if got := c.windowFor(ClassBatch); got != base {
		t.Fatalf("no-signal window = %v, want %v", got, base)
	}
	set(int64(100 * time.Microsecond)) // 10 expected arrivals per window
	if got := c.windowFor(ClassBatch); got != base {
		t.Fatalf("fast-arrival window = %v, want %v", got, base)
	}
	set(int64(10 * time.Millisecond)) // 0.1 expected: waiting buys nothing
	if got := c.windowFor(ClassBatch); got != 0 {
		t.Fatalf("slow-arrival window = %v, want 0", got)
	}
	set(int64(800 * time.Microsecond)) // expected 1.25 -> base * (1.25-0.5)/1.5
	want := time.Duration(float64(base) * 0.5)
	if got := c.windowFor(ClassBatch); got != want {
		t.Fatalf("midpoint window = %v, want %v", got, want)
	}
	if got := c.windowFor(ClassLatency); got != 0 {
		t.Fatalf("latency window (configured 0) = %v, want 0", got)
	}
}

// TestCoalesceDissolutionRace is the regression hammer for the
// group-dissolution race: a lone waiter withdrawing (context cancel)
// while its window timer fires concurrently must never schedule a
// zero-member pass or resurrect a dissolved group. Run under -race in
// CI; the invariant checks below catch logic (not just memory) races.
func TestCoalesceDissolutionRace(t *testing.T) {
	c := newTestCoalescer(t, 50*time.Microsecond, 64)
	l := testFactor(6)
	bs := [][]float64{randVec(l.N, 1)}

	for i := 0; i < 400; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			// The request parks alone; the timer and the withdraw race.
			_, _, _ = c.Submit(ctx, l, true, bs, nil)
			close(done)
		}()
		if i%2 == 0 {
			time.Sleep(30 * time.Microsecond) // land the cancel near the timer fire
		}
		cancel()
		<-done
	}
	// Quiesce: every group either executed or dissolved; nothing leaks.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		pending, parked := len(c.pending), c.parked
		c.mu.Unlock()
		if (pending == 0 && parked == 0) || time.Now().After(deadline) {
			if pending != 0 || parked != 0 {
				t.Fatalf("after hammer: %d pending groups, %d parked requests, want 0/0", pending, parked)
			}
			break
		}
		time.Sleep(time.Millisecond)
	}
	// Every pass that ran had at least one member: passes <= requests,
	// and the width histogram never observed zero.
	if got := c.widthH.Count(); got != c.passes.Value() {
		t.Fatalf("width histogram count %d != passes %d", got, c.passes.Value())
	}
}

// TestChaosTenantFairness is the adversarial-mix chaos test the CI race
// matrix runs: one latency tenant against seven flooding batch tenants
// over a small admission capacity, with a drain landing under fire. It
// asserts liveness and honesty (every request is answered 200/429/503,
// the latency tenant makes progress, shed accounting matches) rather
// than wall-clock numbers, so it is meaningful under -race.
func TestChaosTenantFairness(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Procs:     1,
		Admission: AdmissionConfig{MaxInFlight: 2, Queue: 4},
		Coalesce:  CoalesceConfig{Window: 500 * time.Microsecond},
		Tenant:    TenantConfig{Quota: 2, Weights: map[string]int{"lat-0": 4}},
	})
	l := testFactor(8)
	body := solveBody(t, l, true, [][]float64{randVec(l.N, 1)})

	const clients = 8
	const perClient = 25
	var ok, refused, failed [clients]int
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			hdr := fmt.Sprintf("batch-%d", cl)
			if cl == 0 {
				hdr = "lat-0;class=latency"
			}
			for i := 0; i < perClient; i++ {
				req, err := http.NewRequest("POST", ts.URL+"/v1/trisolve", bytes.NewReader(body))
				if err != nil {
					failed[cl]++
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				req.Header.Set(TenantHeader, hdr)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					failed[cl]++
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					ok[cl]++
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					refused[cl]++
				default:
					failed[cl]++
				}
				resp.Body.Close()
			}
		}(cl)
	}
	wg.Wait()

	totalOK, totalFailed := 0, 0
	for cl := 0; cl < clients; cl++ {
		totalOK += ok[cl]
		totalFailed += failed[cl]
	}
	if totalFailed != 0 {
		t.Fatalf("%d requests failed with unexpected statuses", totalFailed)
	}
	if totalOK == 0 {
		t.Fatal("no request succeeded under the chaos mix")
	}
	if ok[0] == 0 {
		t.Fatal("the latency tenant was starved: zero successes against the batch flood")
	}
	st := s.Stats()
	var acc, shed uint64
	for _, ten := range st.Tenants {
		acc += ten.Accepted
		shed += ten.Shed
	}
	if acc != st.Accepted || shed != st.Shed {
		t.Fatalf("per-tenant accounting (acc %d shed %d) disagrees with totals (acc %d shed %d)",
			acc, shed, st.Accepted, st.Shed)
	}

	// Drain under (residual) fire: a request racing the drain is
	// answered 503, and the drain completes.
	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainErr <- s.Shutdown(ctx)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for !s.draining.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	status, _, _ := postTenant(t, ts.URL, "lat-0;class=latency", body)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: status %d, want 503", status)
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("drain under fire: %v", err)
	}
}
