package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"doconsider/internal/sparse"
)

// postFrame sends a binary request frame and decodes the response
// frame.
func postFrame(t *testing.T, url string, frame []byte) (int, *WireResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/trisolve", FrameContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != FrameContentType {
		t.Fatalf("response content type %q, want %q", ct, FrameContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	wr, err := DecodeResponseFrame(body)
	if err != nil {
		t.Fatalf("decoding response frame (status %d): %v", resp.StatusCode, err)
	}
	return resp.StatusCode, wr
}

// postJSONReq sends a SolveRequest as JSON and decodes the reply.
func postJSONReq(t *testing.T, url string, req *SolveRequest) (int, *SolveResponse) {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/trisolve", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SolveResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, &sr
}

// checkSameSolutions requires bit-identical solution batches.
func checkSameSolutions(t *testing.T, shape string, jx, bx [][]float64) {
	t.Helper()
	if len(jx) != len(bx) {
		t.Fatalf("%s: JSON returned %d solutions, binary %d", shape, len(jx), len(bx))
	}
	for j := range jx {
		if len(jx[j]) != len(bx[j]) {
			t.Fatalf("%s: solution %d lengths differ: %d vs %d", shape, j, len(jx[j]), len(bx[j]))
		}
		for i := range jx[j] {
			if math.Float64bits(jx[j][i]) != math.Float64bits(bx[j][i]) {
				t.Fatalf("%s: solution %d row %d: JSON %x, binary %x",
					shape, j, i, jx[j][i], bx[j][i])
			}
		}
	}
}

// TestBinaryDifferential drives every request shape through both wire
// encodings against one server and requires byte-identical solutions
// and matching fingerprints. The two paths share the solver but not
// the decode, factor resolution or response encode — this test is what
// makes the binary path's zero-copy shortcuts safe to trust.
func TestBinaryDifferential(t *testing.T) {
	_, ts := newTestServer(t, Config{Procs: 2, Coalesce: CoalesceConfig{Window: 0}})
	l := testFactor(12)
	lower := true
	n := l.N

	shapes := []struct {
		name string
		req  func(fp string) *SolveRequest
	}{
		{"inline", func(string) *SolveRequest {
			return &SolveRequest{N: n, RowPtr: l.RowPtr, ColIdx: l.ColIdx, Val: l.Val,
				Lower: &lower, B: [][]float64{randVec(n, 1)}}
		}},
		{"multi-rhs", func(string) *SolveRequest {
			return &SolveRequest{N: n, RowPtr: l.RowPtr, ColIdx: l.ColIdx, Val: l.Val,
				Lower: &lower, B: [][]float64{randVec(n, 2), randVec(n, 3), randVec(n, 4)}}
		}},
		{"fp-resubmit", func(fp string) *SolveRequest {
			return &SolveRequest{Fp: fp, Lower: &lower, B: [][]float64{randVec(n, 5)}}
		}},
		{"drift", func(fp string) *SolveRequest {
			return &SolveRequest{BaseFp: fp, Lower: &lower,
				Edits: []sparse.RowEdit{{Row: int32(n - 1),
					Insert: []sparse.EditEntry{{Col: 0, Val: -0.25}}}},
				B: [][]float64{randVec(n, 6)}}
		}},
		{"timeout", func(fp string) *SolveRequest {
			return &SolveRequest{Fp: fp, Lower: &lower, B: [][]float64{randVec(n, 7)},
				TimeoutMs: 30_000}
		}},
	}

	fp := ""
	for _, sh := range shapes {
		req := sh.req(fp)
		jsonStatus, jr := postJSONReq(t, ts.URL, req)
		if jsonStatus != http.StatusOK {
			t.Fatalf("%s: JSON status %d", sh.name, jsonStatus)
		}
		frame, err := EncodeRequestFrame(req)
		if err != nil {
			t.Fatalf("%s: %v", sh.name, err)
		}
		binStatus, br := postFrame(t, ts.URL, frame)
		if binStatus != http.StatusOK {
			t.Fatalf("%s: binary status %d: %s", sh.name, binStatus, br.ErrMsg)
		}
		checkSameSolutions(t, sh.name, jr.X, br.X)
		if jr.Fp != br.Fp {
			t.Fatalf("%s: JSON fp %q, binary fp %q", sh.name, jr.Fp, br.Fp)
		}
		if sh.name == "inline" {
			if jr.Fp == "" {
				t.Fatal("inline request returned no fingerprint")
			}
			fp = jr.Fp
		}
	}
}

// TestBinaryErrorEquivalence drives the error paths through both
// encodings: same request defect, same HTTP status.
func TestBinaryErrorEquivalence(t *testing.T) {
	_, ts := newTestServer(t, Config{Procs: 2, MaxBatch: 4, Coalesce: CoalesceConfig{Window: 0}})
	l := testFactor(8)
	lower := true
	n := l.N

	// Zero the first diagonal entry: row 0 of a lower factor is just the
	// diagonal.
	noDiag := l.Clone()
	noDiag.Val[0] = 0

	cases := []struct {
		name string
		req  *SolveRequest
		want int
	}{
		{"zero-diagonal", &SolveRequest{N: n, RowPtr: noDiag.RowPtr, ColIdx: noDiag.ColIdx,
			Val: noDiag.Val, Lower: &lower, B: [][]float64{randVec(n, 1)}}, 400},
		{"no-rhs", &SolveRequest{N: n, RowPtr: l.RowPtr, ColIdx: l.ColIdx, Val: l.Val,
			Lower: &lower}, 400},
		{"batch-too-wide", &SolveRequest{N: n, RowPtr: l.RowPtr, ColIdx: l.ColIdx, Val: l.Val,
			Lower: &lower, B: [][]float64{randVec(n, 1), randVec(n, 2), randVec(n, 3),
				randVec(n, 4), randVec(n, 5)}}, 400},
		{"fp-and-inline", &SolveRequest{N: n, RowPtr: l.RowPtr, ColIdx: l.ColIdx, Val: l.Val,
			Fp: "1234", Lower: &lower, B: [][]float64{randVec(n, 1)}}, 400},
		{"edits-without-base", &SolveRequest{Fp: "1234",
			Edits: []sparse.RowEdit{{Row: 0}}, Lower: &lower, B: [][]float64{randVec(n, 1)}}, 400},
		{"unknown-fp", &SolveRequest{Fp: "00000000deadbeef", Lower: &lower,
			B: [][]float64{randVec(n, 1)}}, 404},
		{"unknown-base-fp", &SolveRequest{BaseFp: "00000000deadbeef", Lower: &lower,
			Edits: []sparse.RowEdit{{Row: 0, Insert: []sparse.EditEntry{{Col: 0, Val: 1}}}},
			B:     [][]float64{randVec(n, 1)}}, 404},
	}
	for _, tc := range cases {
		jsonStatus, _ := postJSONReq(t, ts.URL, tc.req)
		if jsonStatus != tc.want {
			t.Errorf("%s: JSON status %d, want %d", tc.name, jsonStatus, tc.want)
		}
		frame, err := EncodeRequestFrame(tc.req)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		binStatus, br := postFrame(t, ts.URL, frame)
		if binStatus != tc.want {
			t.Errorf("%s: binary status %d (%s), want %d", tc.name, binStatus, br.ErrMsg, tc.want)
		}
		if binStatus != 200 && br.Status != tc.want {
			t.Errorf("%s: error frame carries status %d, want %d", tc.name, br.Status, tc.want)
		}
	}
}

// TestBinaryAdmission429 verifies the shed path answers binary requests
// with a binary 429 frame, equivalently to the JSON path.
func TestBinaryAdmission429(t *testing.T) {
	// TenantQueue: -1 restores the pre-tenant immediate-shed behavior this
	// test pins (with queueing on, the second request would park instead).
	s, ts := newTestServer(t, Config{Procs: 1, Admission: AdmissionConfig{MaxInFlight: 1, Queue: -1}})
	l := testFactor(8)
	body := solveBody(t, l, true, [][]float64{randVec(l.N, 1)})
	_, finish := stallRequest(t, ts.URL, body)
	defer finish()
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.inFlight() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	lower := true
	frame, err := EncodeRequestFrame(&SolveRequest{N: l.N, RowPtr: l.RowPtr, ColIdx: l.ColIdx,
		Val: l.Val, Lower: &lower, B: [][]float64{randVec(l.N, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/trisolve", FrameContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity binary request: status %d, want 429", resp.StatusCode)
	}
}

// TestBinaryArenaLeak is the lifecycle integration check: after a mixed
// binary workload completes and the server drains, every request arena
// has returned to the pool.
func TestBinaryArenaLeak(t *testing.T) {
	s, err := New(Config{Procs: 2, Coalesce: CoalesceConfig{Window: 2 * time.Millisecond, Width: 8}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	l := testFactor(10)
	lower := true
	inline, err := EncodeRequestFrame(&SolveRequest{N: l.N, RowPtr: l.RowPtr, ColIdx: l.ColIdx,
		Val: l.Val, Lower: &lower, B: [][]float64{randVec(l.N, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	status, wr := postFrame(t, ts.URL, inline)
	if status != 200 {
		t.Fatalf("inline warmup: status %d: %s", status, wr.ErrMsg)
	}
	resub, err := EncodeRequestFrame(&SolveRequest{Fp: wr.Fp, Lower: &lower,
		B: [][]float64{randVec(l.N, 2)}})
	if err != nil {
		t.Fatal(err)
	}

	const workers, iters = 6, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				frame := resub
				if i%10 == 0 {
					frame = inline
				}
				resp, err := http.Post(ts.URL+"/v1/trisolve", FrameContentType, bytes.NewReader(frame))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("worker %d iter %d: status %d", w, i, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	st := s.arenas.Stats()
	if st.Outstanding != 0 {
		t.Fatalf("%d arenas still outstanding after drain: %+v", st.Outstanding, st)
	}
	if st.Gets != st.Releases {
		t.Fatalf("arena gets %d != releases %d after drain: %+v", st.Gets, st.Releases, st)
	}
	if st.Gets < workers*iters {
		t.Fatalf("arena pool saw %d gets, expected at least %d", st.Gets, workers*iters)
	}
}

// TestSolveFrameZeroAlloc pins the tentpole end to end below the HTTP
// transport: a warm fp-resubmission through SolveFrame — frame decode,
// hot-factor lookup, coalescer fast path, bound solve, response encode
// — performs zero heap allocations.
func TestSolveFrameZeroAlloc(t *testing.T) {
	s, frame := warmBinaryServer(t, 16)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		st := s.getReqState()
		out, status := s.SolveFrame(ctx, frame, st)
		if status != 200 {
			t.Fatalf("status %d", status)
		}
		_ = out
		s.putReqState(st)
	})
	if allocs != 0 {
		t.Fatalf("warm binary request = %v allocs/op, want 0", allocs)
	}
}

// TestSolveFrameZeroAllocSampled is TestSolveFrameZeroAlloc with level
// sampling on every request: the pooled per-level clock and the
// solver's memoized timed body must not cost the warm path its 0
// allocs/op.
func TestSolveFrameZeroAllocSampled(t *testing.T) {
	s, frame := warmBinaryServerCfg(t, 16, Config{Procs: 2, TraceSampleEvery: 1, Coalesce: CoalesceConfig{Window: 0}})
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		st := s.getReqState()
		out, status := s.SolveFrame(ctx, frame, st)
		if status != 200 {
			t.Fatalf("status %d", status)
		}
		_ = out
		s.putReqState(st)
	})
	if allocs != 0 {
		t.Fatalf("warm sampled binary request = %v allocs/op, want 0", allocs)
	}
}

// warmBinaryServer builds a solo-pass server, registers a mesh factor
// through the binary path and returns a warm fp-resubmission frame.
func warmBinaryServer(tb testing.TB, mesh int) (*Server, []byte) {
	return warmBinaryServerCfg(tb, mesh, Config{Procs: 2, Coalesce: CoalesceConfig{Window: 0}})
}

// TestBinaryTenantWarmZeroAlloc pins the tentpole allocation contract:
// the warm binary fast path stays at exactly 0 allocs/op with tenant
// accounting on — resolving the frame's tenant section, stamping the
// trace and observing the per-tenant counters and histogram.
func TestBinaryTenantWarmZeroAlloc(t *testing.T) {
	s, frame := warmBinaryServer(t, 16)
	lower := true
	wr, err := DecodeResponseFrame(mustSolveOnce(t, s, frame))
	if err != nil {
		t.Fatal(err)
	}
	tframe, err := EncodeRequestFrame(&SolveRequest{Fp: wr.Fp, Lower: &lower,
		B: [][]float64{randVec(16*16, 9)}, Tenant: "acme", Class: "latency"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// First tenant-tagged request creates the tenant (allocates); the
	// steady state must not.
	st := s.getReqState()
	if _, status := s.SolveFrame(ctx, tframe, st); status != 200 {
		t.Fatalf("tenant warmup status %d", status)
	}
	s.putReqState(st)
	allocs := testing.AllocsPerRun(100, func() {
		st := s.getReqState()
		_, status := s.SolveFrame(ctx, tframe, st)
		if status != 200 {
			t.Fatalf("status %d", status)
		}
		s.putReqState(st)
	})
	if allocs != 0 {
		t.Fatalf("warm tenant-tagged binary request = %v allocs/op, want 0", allocs)
	}
	if got := s.tenants.resolve("acme").classReq[ClassLatency].Value(); got < 100 {
		t.Fatalf("tenant accounting saw %d requests, want >= 100", got)
	}
}

// mustSolveOnce runs one frame through the server and returns the raw
// response frame bytes.
func mustSolveOnce(tb testing.TB, s *Server, frame []byte) []byte {
	tb.Helper()
	st := s.getReqState()
	out, status := s.SolveFrame(context.Background(), frame, st)
	if status != 200 {
		tb.Fatalf("status %d", status)
	}
	resp := append([]byte(nil), out...)
	s.putReqState(st)
	return resp
}

// warmBinaryServerCfg is warmBinaryServer with a caller-chosen Config.
func warmBinaryServerCfg(tb testing.TB, mesh int, cfg Config) (*Server, []byte) {
	tb.Helper()
	s, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { s.Shutdown(context.Background()) })
	l := testFactor(mesh)
	lower := true
	inline, err := EncodeRequestFrame(&SolveRequest{N: l.N, RowPtr: l.RowPtr, ColIdx: l.ColIdx,
		Val: l.Val, Lower: &lower, B: [][]float64{randVec(l.N, 1)}})
	if err != nil {
		tb.Fatal(err)
	}
	ctx := context.Background()
	st := s.getReqState()
	out, status := s.SolveFrame(ctx, inline, st)
	if status != 200 {
		tb.Fatalf("inline warmup status %d", status)
	}
	wr, err := DecodeResponseFrame(out)
	if err != nil {
		tb.Fatal(err)
	}
	s.putReqState(st)
	if wr.Fp == "" {
		tb.Fatal("warmup returned no fingerprint")
	}
	frame, err := EncodeRequestFrame(&SolveRequest{Fp: wr.Fp, Lower: &lower,
		B: [][]float64{randVec(l.N, 2)}})
	if err != nil {
		tb.Fatal(err)
	}
	// One warm pass so the solver memo and hot-factor table are primed.
	st = s.getReqState()
	if _, status := s.SolveFrame(ctx, frame, st); status != 200 {
		tb.Fatalf("resubmit warmup status %d", status)
	}
	s.putReqState(st)
	return s, frame
}

// BenchmarkBinaryRequest measures the binary wire path. The fp-warm
// case is the tentpole benchmark: a warm fingerprint resubmission from
// frame bytes to response bytes, gated by CI at exactly 0 allocs/op.
func BenchmarkBinaryRequest(b *testing.B) {
	b.Run("fp-warm", func(b *testing.B) {
		s, frame := warmBinaryServer(b, 16)
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st := s.getReqState()
			_, status := s.SolveFrame(ctx, frame, st)
			if status != 200 {
				b.Fatalf("status %d", status)
			}
			s.putReqState(st)
		}
	})
	b.Run("fp-warm-sampled", func(b *testing.B) {
		// Per-wavefront-level timing on every request: the pooled level
		// clock and the solver's memoized timed body must keep the warm
		// path at 0 allocs/op (gated by CI's allocs_budget alongside
		// fp-warm).
		s, frame := warmBinaryServerCfg(b, 16, Config{Procs: 2, TraceSampleEvery: 1, Coalesce: CoalesceConfig{Window: 0}})
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st := s.getReqState()
			_, status := s.SolveFrame(ctx, frame, st)
			if status != 200 {
				b.Fatalf("status %d", status)
			}
			s.putReqState(st)
		}
	})
	b.Run("fp-warm-tenant", func(b *testing.B) {
		// The warm path with tenant accounting on: the frame carries a
		// tenant section, so every iteration resolves the tenant, stamps
		// the trace and feeds the per-tenant counters and histogram. The
		// allocs_budget gate pins this at 0 allocs/op alongside fp-warm.
		s, frame := warmBinaryServer(b, 16)
		lower := true
		wr, err := DecodeResponseFrame(mustSolveOnce(b, s, frame))
		if err != nil {
			b.Fatal(err)
		}
		tframe, err := EncodeRequestFrame(&SolveRequest{Fp: wr.Fp, Lower: &lower,
			B: [][]float64{randVec(16*16, 9)}, Tenant: "acme", Class: "latency"})
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		st := s.getReqState()
		if _, status := s.SolveFrame(ctx, tframe, st); status != 200 {
			b.Fatalf("tenant warmup status %d", status)
		}
		s.putReqState(st)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st := s.getReqState()
			_, status := s.SolveFrame(ctx, tframe, st)
			if status != 200 {
				b.Fatalf("status %d", status)
			}
			s.putReqState(st)
		}
	})
	b.Run("http", func(b *testing.B) {
		s, frame := warmBinaryServer(b, 16)
		h := s.Handler()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest("POST", "/v1/trisolve", bytes.NewReader(frame))
			req.Header.Set("Content-Type", FrameContentType)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatalf("status %d", rec.Code)
			}
		}
	})
}
