package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"doconsider/internal/arena"
	"doconsider/internal/sparse"
)

// Binary wire protocol ("DCWF" frames).
//
// POST /v1/trisolve with Content-Type application/x-doconsider-frame
// carries the request as one versioned, length-prefixed binary frame
// instead of JSON. All integers and floats are little-endian. A frame
// is:
//
//	header (24 bytes)
//	  [0:4)   magic "DCWF"
//	  [4]     version (1)
//	  [5]     flags: bit0 = lower (forward solve)
//	  [6:8)   section count (uint16)
//	  [8:16)  total frame length in bytes (uint64, must equal the body)
//	  [16:24) reserved, zero
//	section table (16 bytes per section, immediately after the header)
//	  [0:2)   section type (uint16)
//	  [2:4)   reserved, zero
//	  [4:8)   element count (uint32, meaning per type)
//	  [8:12)  payload byte offset from frame start (uint32, 8-aligned)
//	  [12:16) payload byte length (uint32)
//	payloads (8-aligned, within [header+table, total length))
//
// Section types and payloads:
//
//	1 dim      count = n; no payload
//	2 rowptr   count = n+1 int32s
//	3 colidx   count = nnz int32s
//	4 val      count = nnz float64s
//	5 rhs      count = k vectors; payload k*n float64s, row-major
//	6 fp       resubmit fingerprint; payload one uint64
//	7 base_fp  drift base fingerprint; payload one uint64
//	8 edits    count = edit records (layout below)
//	9 timeout  count = timeout in ms; no payload
//	10 solutions (response) count = k vectors; payload k*n float64s
//	11 fp        (response) payload one uint64
//	12 info      (response) payload fused uint32, width uint32, executed int64
//	13 strategy  (response) count = byte length; UTF-8 payload
//	14 error     (response) count = HTTP status; UTF-8 message payload
//	15 trace_id  client-chosen trace ID to propagate; payload one uint64
//	16 trace_id  (response) payload one uint64 (echoed or server-assigned)
//	17 tenant    count = class (0 batch, 1 latency); payload tenant name
//	             (UTF-8, 1-64 bytes of [A-Za-z0-9._-])
//
// One edit record (section 8): a 16-byte header {row int32, inserts
// int32, deletes int32, reserved int32}, the insert column int32s, the
// delete column int32s, zero padding to the next 8-byte boundary, then
// the insert value float64s. Records follow each other back to back.
//
// On a little-endian host an 8-aligned request buffer decodes by
// slicing: rowptr/colidx/val/rhs become typed views over the frame
// bytes with no element-wise copy (the factor is cloned only when it
// enters the by-fingerprint cache — the cold path). Big-endian hosts
// and misaligned buffers fall back to element-wise decoding into arena
// memory; the wire format itself is always little-endian.

// FrameContentType is the Content-Type that selects the binary wire
// protocol on POST /v1/trisolve.
const FrameContentType = "application/x-doconsider-frame"

// MaxFrameBytes bounds a request frame, mirroring the 64 MiB
// MaxBytesReader bound on the JSON path.
const MaxFrameBytes = 64 << 20

const (
	frameMagic      = "DCWF"
	frameVersion    = 1
	frameHeaderLen  = 24
	frameSectionLen = 16
	flagLower       = 1 << 0

	maxFrameSections = 32
)

// Section types.
const (
	secDim         = 1
	secRowPtr      = 2
	secColIdx      = 3
	secVal         = 4
	secRHS         = 5
	secFp          = 6
	secBaseFp      = 7
	secEdits       = 8
	secTimeout     = 9
	secSolutions   = 10
	secRespFp      = 11
	secInfo        = 12
	secStrategy    = 13
	secError       = 14
	secTraceID     = 15
	secRespTraceID = 16
	secTenant      = 17
)

var (
	errFrameTooShort = errors.New("frame shorter than header")
	errFrameMagic    = errors.New("bad frame magic")
)

// frameSection is one decoded section-table entry.
type frameSection struct {
	typ    uint16
	count  uint32
	off    uint32
	length uint32
}

// parseSections validates the frame envelope — magic, version, declared
// length, table bounds, payload bounds and alignment — and returns the
// flags byte and the section table. It never panics or reads past the
// buffer on any input (FuzzFrameDecode pins this).
func parseSections(buf []byte, sects []frameSection) (flags byte, _ []frameSection, err error) {
	if len(buf) < frameHeaderLen {
		return 0, nil, errFrameTooShort
	}
	if string(buf[0:4]) != frameMagic {
		return 0, nil, errFrameMagic
	}
	if buf[4] != frameVersion {
		return 0, nil, fmt.Errorf("unsupported frame version %d (want %d)", buf[4], frameVersion)
	}
	flags = buf[5]
	nsect := int(binary.LittleEndian.Uint16(buf[6:8]))
	total := binary.LittleEndian.Uint64(buf[8:16])
	if total != uint64(len(buf)) {
		return 0, nil, fmt.Errorf("frame declares %d bytes, body has %d", total, len(buf))
	}
	if nsect > maxFrameSections {
		return 0, nil, fmt.Errorf("frame has %d sections, limit %d", nsect, maxFrameSections)
	}
	tableEnd := uint64(frameHeaderLen) + uint64(nsect)*frameSectionLen
	if tableEnd > uint64(len(buf)) {
		return 0, nil, fmt.Errorf("section table (%d entries) exceeds frame", nsect)
	}
	sects = sects[:0]
	for i := 0; i < nsect; i++ {
		e := buf[frameHeaderLen+i*frameSectionLen:]
		s := frameSection{
			typ:    binary.LittleEndian.Uint16(e[0:2]),
			count:  binary.LittleEndian.Uint32(e[4:8]),
			off:    binary.LittleEndian.Uint32(e[8:12]),
			length: binary.LittleEndian.Uint32(e[12:16]),
		}
		if s.length > 0 {
			if s.off%8 != 0 {
				return 0, nil, fmt.Errorf("section %d payload offset %d not 8-aligned", s.typ, s.off)
			}
			if uint64(s.off) < tableEnd || uint64(s.off)+uint64(s.length) > uint64(len(buf)) {
				return 0, nil, fmt.Errorf("section %d payload [%d,%d) outside frame", s.typ, s.off, uint64(s.off)+uint64(s.length))
			}
		} else {
			// An empty payload carries no bytes; normalize its offset so
			// decoders can slice buf[s.off:s.off+s.length] unconditionally.
			s.off = 0
		}
		sects = append(sects, s)
	}
	return flags, sects, nil
}

// wireRequest is a decoded request frame. The slices are views into the
// frame buffer (or arena copies on hosts without zero-copy), valid for
// the lifetime of the request arena.
type wireRequest struct {
	lower     bool
	n         int
	rowPtr    []int32
	colIdx    []int32
	val       []float64
	rhsFlat   []float64 // k*n row-major
	k         int
	fp        uint64
	hasFp     bool
	baseFp    uint64
	hasBaseFp bool
	edits     []sparse.RowEdit
	timeoutMs int
	traceID   uint64
	hasTrace  bool
	tenant    []byte // view into the frame; empty when no tenant section
	class     Class
	hasTenant bool
}

// reset clears a pooled wireRequest for reuse.
func (q *wireRequest) reset() {
	*q = wireRequest{}
}

// sectionInt32s decodes an int32 payload: a zero-copy view on
// little-endian hosts with aligned buffers, an arena copy otherwise.
func sectionInt32s(payload []byte, a *arena.Arena) []int32 {
	if arena.HostLittleEndian() && arena.Aligned8(payload) {
		return arena.ViewInt32s(payload)
	}
	out := a.Int32s(len(payload) / 4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(payload[4*i:]))
	}
	return out
}

// sectionFloat64s decodes a float64 payload the same way.
func sectionFloat64s(payload []byte, a *arena.Arena) []float64 {
	if arena.HostLittleEndian() && arena.Aligned8(payload) {
		return arena.ViewFloat64s(payload)
	}
	out := a.Float64s(len(payload) / 8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return out
}

// parseRequestFrame decodes a request frame into req. Numeric sections
// become views into buf where the host allows (see sectionInt32s), so
// req must not outlive buf or the arena. sects is caller-provided
// scratch to keep the warm path allocation-free.
func parseRequestFrame(buf []byte, a *arena.Arena, req *wireRequest, sects []frameSection) error {
	if len(buf) > MaxFrameBytes {
		return fmt.Errorf("frame has %d bytes, limit %d", len(buf), MaxFrameBytes)
	}
	flags, sects, err := parseSections(buf, sects)
	if err != nil {
		return err
	}
	req.reset()
	req.lower = flags&flagLower != 0
	seen := uint32(0)
	for _, s := range sects {
		if s.typ >= 32 {
			return fmt.Errorf("unknown section type %d", s.typ)
		}
		if seen&(1<<s.typ) != 0 {
			return fmt.Errorf("duplicate section type %d", s.typ)
		}
		seen |= 1 << s.typ
		payload := buf[s.off : uint64(s.off)+uint64(s.length)]
		switch s.typ {
		case secDim:
			if s.count == 0 || s.count > math.MaxInt32 {
				return fmt.Errorf("dim section: n=%d out of range", s.count)
			}
			req.n = int(s.count)
		case secRowPtr:
			if uint64(s.length) != 4*uint64(s.count) {
				return fmt.Errorf("rowptr section: %d bytes for %d entries", s.length, s.count)
			}
			req.rowPtr = sectionInt32s(payload, a)
		case secColIdx:
			if uint64(s.length) != 4*uint64(s.count) {
				return fmt.Errorf("colidx section: %d bytes for %d entries", s.length, s.count)
			}
			req.colIdx = sectionInt32s(payload, a)
		case secVal:
			if uint64(s.length) != 8*uint64(s.count) {
				return fmt.Errorf("val section: %d bytes for %d entries", s.length, s.count)
			}
			req.val = sectionFloat64s(payload, a)
		case secRHS:
			if s.count == 0 {
				return errors.New("rhs section: zero vectors")
			}
			if s.length%8 != 0 || uint64(s.length) < 8*uint64(s.count) ||
				uint64(s.length/8)%uint64(s.count) != 0 {
				return fmt.Errorf("rhs section: %d bytes do not divide into %d vectors", s.length, s.count)
			}
			req.k = int(s.count)
			req.rhsFlat = sectionFloat64s(payload, a)
		case secFp:
			if s.length != 8 {
				return fmt.Errorf("fp section: %d bytes, want 8", s.length)
			}
			req.fp = binary.LittleEndian.Uint64(payload)
			req.hasFp = true
		case secBaseFp:
			if s.length != 8 {
				return fmt.Errorf("base_fp section: %d bytes, want 8", s.length)
			}
			req.baseFp = binary.LittleEndian.Uint64(payload)
			req.hasBaseFp = true
		case secEdits:
			edits, err := parseEdits(payload, s.count)
			if err != nil {
				return err
			}
			req.edits = edits
		case secTimeout:
			// The count field is a signed millisecond value on the wire so a
			// client bug that encodes a negative timeout is visible here and
			// rejected by the handler, mirroring the JSON path.
			req.timeoutMs = int(int32(s.count))
		case secTraceID:
			if s.length != 8 {
				return fmt.Errorf("trace_id section: %d bytes, want 8", s.length)
			}
			req.traceID = binary.LittleEndian.Uint64(payload)
			req.hasTrace = true
		case secTenant:
			if err := validateTenantNameBytes(payload); err != nil {
				return fmt.Errorf("tenant section: %w", err)
			}
			if s.count >= numClasses {
				return fmt.Errorf("tenant section: unknown class %d", s.count)
			}
			req.tenant = payload
			req.class = Class(s.count)
			req.hasTenant = true
		default:
			return fmt.Errorf("unknown section type %d", s.typ)
		}
	}
	return nil
}

// parseEdits decodes the drift edit records. Drift requests materialize
// a new factor anyway (the cold path), so this decoder favors bounds
// clarity over zero-copy and allocates ordinary slices.
func parseEdits(payload []byte, count uint32) ([]sparse.RowEdit, error) {
	// Every record occupies at least its 16-byte header; a count the
	// payload cannot hold is rejected before it sizes any allocation.
	if count > math.MaxInt32 || uint64(count)*16 > uint64(len(payload)) {
		return nil, fmt.Errorf("edits section: count %d exceeds %d payload bytes", count, len(payload))
	}
	edits := make([]sparse.RowEdit, 0, count)
	off := 0
	for e := uint32(0); e < count; e++ {
		if off+16 > len(payload) {
			return nil, fmt.Errorf("edits section: record %d header exceeds payload", e)
		}
		row := int32(binary.LittleEndian.Uint32(payload[off:]))
		nIns := int64(int32(binary.LittleEndian.Uint32(payload[off+4:])))
		nDel := int64(int32(binary.LittleEndian.Uint32(payload[off+8:])))
		off += 16
		if nIns < 0 || nDel < 0 {
			return nil, fmt.Errorf("edits section: record %d has negative counts", e)
		}
		need := 4 * (nIns + nDel)
		need += (8 - need%8) % 8
		need += 8 * nIns
		if int64(off)+need > int64(len(payload)) {
			return nil, fmt.Errorf("edits section: record %d body exceeds payload", e)
		}
		ed := sparse.RowEdit{Row: row}
		if nIns > 0 {
			ed.Insert = make([]sparse.EditEntry, nIns)
		}
		for i := range ed.Insert {
			ed.Insert[i].Col = int32(binary.LittleEndian.Uint32(payload[off:]))
			off += 4
		}
		if nDel > 0 {
			ed.Delete = make([]int32, nDel)
		}
		for i := range ed.Delete {
			ed.Delete[i] = int32(binary.LittleEndian.Uint32(payload[off:]))
			off += 4
		}
		off += (8 - off%8) % 8
		for i := range ed.Insert {
			ed.Insert[i].Val = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
			off += 8
		}
		edits = append(edits, ed)
	}
	return edits, nil
}

// align8 rounds n up to the next multiple of 8.
func align8(n int) int { return (n + 7) &^ 7 }

// respLayout is the fixed layout of a success response frame for k
// solutions of length n: solutions, fp (always present; patched to the
// zero fingerprint on a collision), info, a trace ID, and a strategy
// section with strategyReserve bytes reserved (the count field is
// patched to the actual name length).
const strategyReserve = 24

type respLayout struct {
	total    int
	solOff   int
	fpOff    int
	infoOff  int
	tidOff   int
	stratOff int
	k, n     int
}

func responseLayout(k, n int) respLayout {
	var lo respLayout
	lo.k, lo.n = k, n
	off := frameHeaderLen + 5*frameSectionLen
	lo.solOff = off
	off += align8(8 * k * n)
	lo.fpOff = off
	off += 8
	lo.infoOff = off
	off += 16
	lo.tidOff = off
	off += 8
	lo.stratOff = off
	off += strategyReserve
	lo.total = off
	return lo
}

// newResponseFrame lays a success frame out in arena memory and returns
// it with the solution row views aimed into the solutions section, so
// the solver writes results directly into the response bytes. The
// header, table and reserved regions are fully written here — arena
// memory is recycled across requests and must never leak stale bytes
// onto the wire.
func newResponseFrame(a *arena.Arena, k, n int) ([]byte, respLayout, [][]float64) {
	lo := responseLayout(k, n)
	buf := a.Bytes(lo.total)
	writeFrameHeader(buf, 0, 5, uint64(lo.total))
	writeSection(buf, 0, secSolutions, uint32(k), uint32(lo.solOff), uint32(8*k*n))
	writeSection(buf, 1, secRespFp, 0, uint32(lo.fpOff), 8)
	writeSection(buf, 2, secInfo, 0, uint32(lo.infoOff), 16)
	writeSection(buf, 3, secStrategy, 0, uint32(lo.stratOff), 0)
	writeSection(buf, 4, secRespTraceID, 0, uint32(lo.tidOff), 8)
	// Zero the pad after the solutions payload and the strategy reserve;
	// every other byte up to total is written by the sections above or by
	// the solve/finish steps.
	for i := lo.solOff + 8*k*n; i < lo.fpOff; i++ {
		buf[i] = 0
	}
	for i := lo.stratOff; i < lo.total; i++ {
		buf[i] = 0
	}
	solBytes := buf[lo.solOff : lo.solOff+8*k*n]
	var xs [][]float64
	if arena.HostLittleEndian() {
		flat := arena.ViewFloat64s(solBytes)
		xs = a.Rows(k)
		for j := 0; j < k; j++ {
			xs[j] = flat[j*n : (j+1)*n : (j+1)*n]
		}
	} else {
		// Big-endian host: solve into arena vectors, byte-swap in finish.
		xs = a.Rows(k)
		for j := 0; j < k; j++ {
			xs[j] = a.Float64s(n)
		}
	}
	return buf, lo, xs
}

// finishResponseFrame patches the fingerprint, info, trace-ID and
// strategy sections after the solve. On big-endian hosts it also
// serializes the solutions into the frame.
func finishResponseFrame(buf []byte, lo respLayout, xs [][]float64, fp uint64, info SolveInfo, tid uint64) []byte {
	if !arena.HostLittleEndian() {
		sol := buf[lo.solOff:]
		for j, x := range xs {
			for i, v := range x {
				binary.LittleEndian.PutUint64(sol[8*(j*lo.n+i):], math.Float64bits(v))
			}
		}
	}
	binary.LittleEndian.PutUint64(buf[lo.fpOff:], fp)
	binary.LittleEndian.PutUint64(buf[lo.tidOff:], tid)
	binary.LittleEndian.PutUint32(buf[lo.infoOff:], uint32(info.Fused))
	binary.LittleEndian.PutUint32(buf[lo.infoOff+4:], uint32(info.Width))
	binary.LittleEndian.PutUint64(buf[lo.infoOff+8:], uint64(info.Metrics.Executed))
	strat := info.Strategy
	if len(strat) > strategyReserve {
		strat = strat[:strategyReserve]
	}
	copy(buf[lo.stratOff:], strat)
	// Patch the strategy section's count and length to the actual name.
	e := buf[frameHeaderLen+3*frameSectionLen:]
	binary.LittleEndian.PutUint32(e[4:8], uint32(len(strat)))
	binary.LittleEndian.PutUint32(e[12:16], uint32(len(strat)))
	return buf
}

// writeFrameHeader fills the 24-byte header (version, flags, section
// count, total length, zeroed reserve).
func writeFrameHeader(buf []byte, flags byte, nsect int, total uint64) {
	copy(buf[0:4], frameMagic)
	buf[4] = frameVersion
	buf[5] = flags
	binary.LittleEndian.PutUint16(buf[6:8], uint16(nsect))
	binary.LittleEndian.PutUint64(buf[8:16], total)
	for i := 16; i < 24; i++ {
		buf[i] = 0
	}
}

// writeSection fills section-table entry i.
func writeSection(buf []byte, i int, typ uint16, count, off, length uint32) {
	e := buf[frameHeaderLen+i*frameSectionLen:]
	binary.LittleEndian.PutUint16(e[0:2], typ)
	binary.LittleEndian.PutUint16(e[2:4], 0)
	binary.LittleEndian.PutUint32(e[4:8], count)
	binary.LittleEndian.PutUint32(e[8:12], off)
	binary.LittleEndian.PutUint32(e[12:16], length)
}

// encodeErrorFrame builds an error response frame: section 14 with the
// HTTP status in the count field and the message as payload, plus a
// response trace-ID section so rejected requests are correlatable with
// /v1/trace (tid 0 means the request never got an ID — decoders treat
// it as absent).
func encodeErrorFrame(status int, msg string, tid uint64) []byte {
	payOff := frameHeaderLen + 2*frameSectionLen
	tidOff := payOff + align8(len(msg))
	total := tidOff + 8
	buf := make([]byte, total)
	writeFrameHeader(buf, 0, 2, uint64(total))
	writeSection(buf, 0, secError, uint32(status), uint32(payOff), uint32(len(msg)))
	writeSection(buf, 1, secRespTraceID, 0, uint32(tidOff), 8)
	copy(buf[payOff:], msg)
	binary.LittleEndian.PutUint64(buf[tidOff:], tid)
	return buf
}

// EncodeRequestFrame serializes a SolveRequest as a binary request
// frame. It is the client-side encoder used by loadgen, the examples
// and the differential tests; the server only decodes request frames.
// Exactly one of the factor forms (inline matrix, Fp, BaseFp+Edits)
// should be set, mirroring the JSON rules; B carries the right-hand
// sides (B64 is a JSON-ism and is rejected here).
func EncodeRequestFrame(req *SolveRequest) ([]byte, error) {
	if len(req.B64) > 0 {
		return nil, errors.New("binary frames carry RHS in B, not B64")
	}
	type sec struct {
		typ    uint16
		count  uint32
		length int
		write  func(b []byte)
	}
	var secs []sec
	if req.N != 0 || req.RowPtr != nil || req.ColIdx != nil || req.Val != nil {
		secs = append(secs,
			sec{typ: secDim, count: uint32(req.N)},
			sec{typ: secRowPtr, count: uint32(len(req.RowPtr)), length: 4 * len(req.RowPtr),
				write: func(b []byte) { putInt32s(b, req.RowPtr) }},
			sec{typ: secColIdx, count: uint32(len(req.ColIdx)), length: 4 * len(req.ColIdx),
				write: func(b []byte) { putInt32s(b, req.ColIdx) }},
			sec{typ: secVal, count: uint32(len(req.Val)), length: 8 * len(req.Val),
				write: func(b []byte) { putFloat64s(b, req.Val) }},
		)
	}
	if req.Fp != "" {
		fp, err := parseHexFp(req.Fp)
		if err != nil {
			return nil, err
		}
		secs = append(secs, sec{typ: secFp, length: 8,
			write: func(b []byte) { binary.LittleEndian.PutUint64(b, fp) }})
	}
	if req.BaseFp != "" {
		fp, err := parseHexFp(req.BaseFp)
		if err != nil {
			return nil, err
		}
		secs = append(secs, sec{typ: secBaseFp, length: 8,
			write: func(b []byte) { binary.LittleEndian.PutUint64(b, fp) }})
	}
	if len(req.Edits) > 0 {
		length := editsWireLen(req.Edits)
		secs = append(secs, sec{typ: secEdits, count: uint32(len(req.Edits)), length: length,
			write: func(b []byte) { putEdits(b, req.Edits) }})
	}
	if len(req.B) > 0 {
		n := len(req.B[0])
		length := 8 * len(req.B) * n
		secs = append(secs, sec{typ: secRHS, count: uint32(len(req.B)), length: length,
			write: func(b []byte) {
				for j, row := range req.B {
					putFloat64s(b[8*j*n:], row)
				}
			}})
	}
	if req.TimeoutMs != 0 {
		// Encode negative values faithfully (int32 on the wire): the server
		// rejects them with 400, and hiding them client-side would mask the
		// bug the rejection exists to surface.
		secs = append(secs, sec{typ: secTimeout, count: uint32(int32(req.TimeoutMs))})
	}
	if req.Tenant != "" {
		class, err := ParseClass(req.Class)
		if req.Class == "" {
			class, err = ClassBatch, nil
		}
		if err != nil {
			return nil, err
		}
		tenant := req.Tenant
		secs = append(secs, sec{typ: secTenant, count: uint32(class), length: len(tenant),
			write: func(b []byte) { copy(b, tenant) }})
	}
	if req.TraceID != "" {
		tid, err := parseHexFp(req.TraceID)
		if err != nil {
			return nil, fmt.Errorf("malformed trace_id %q", req.TraceID)
		}
		secs = append(secs, sec{typ: secTraceID, length: 8,
			write: func(b []byte) { binary.LittleEndian.PutUint64(b, tid) }})
	}

	off := frameHeaderLen + len(secs)*frameSectionLen
	offs := make([]int, len(secs))
	for i := range secs {
		offs[i] = off
		off += align8(secs[i].length)
	}
	buf := make([]byte, off)
	var flags byte
	if req.Lower == nil || *req.Lower {
		flags |= flagLower
	}
	writeFrameHeader(buf, flags, len(secs), uint64(off))
	for i, s := range secs {
		o := offs[i]
		if s.length == 0 {
			o = 0
		}
		writeSection(buf, i, s.typ, s.count, uint32(o), uint32(s.length))
		if s.write != nil {
			s.write(buf[offs[i] : offs[i]+s.length])
		}
	}
	return buf, nil
}

func parseHexFp(hexFp string) (uint64, error) {
	var fp uint64
	if _, err := fmt.Sscanf(hexFp, "%x", &fp); err != nil {
		return 0, fmt.Errorf("malformed fingerprint %q", hexFp)
	}
	return fp, nil
}

func putInt32s(b []byte, v []int32) {
	for i, x := range v {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(x))
	}
}

func putFloat64s(b []byte, v []float64) {
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
	}
}

func editsWireLen(edits []sparse.RowEdit) int {
	total := 0
	for _, e := range edits {
		rec := 16 + 4*(len(e.Insert)+len(e.Delete))
		rec = align8(rec)
		rec += 8 * len(e.Insert)
		total += rec
	}
	return total
}

func putEdits(b []byte, edits []sparse.RowEdit) {
	off := 0
	for _, e := range edits {
		binary.LittleEndian.PutUint32(b[off:], uint32(e.Row))
		binary.LittleEndian.PutUint32(b[off+4:], uint32(len(e.Insert)))
		binary.LittleEndian.PutUint32(b[off+8:], uint32(len(e.Delete)))
		binary.LittleEndian.PutUint32(b[off+12:], 0)
		off += 16
		for _, in := range e.Insert {
			binary.LittleEndian.PutUint32(b[off:], uint32(in.Col))
			off += 4
		}
		for _, d := range e.Delete {
			binary.LittleEndian.PutUint32(b[off:], uint32(d))
			off += 4
		}
		for off%8 != 0 {
			b[off] = 0
			off++
		}
		for _, in := range e.Insert {
			binary.LittleEndian.PutUint64(b[off:], math.Float64bits(in.Val))
			off += 8
		}
	}
}

// WireResponse is a decoded binary response frame (client side).
type WireResponse struct {
	X        [][]float64
	Fp       string // hex, empty when the server returned no fingerprint
	Fused    int
	Width    int
	Strategy string
	Executed int64
	TraceID  string // hex, empty when the server sent no trace ID
	// Status/ErrMsg are set when the frame is an error response.
	Status int
	ErrMsg string
}

// DecodeResponseFrame parses a binary response frame. It copies the
// solutions out of the buffer (clients keep results after the
// connection buffer is reused), so it does not require alignment.
func DecodeResponseFrame(buf []byte) (*WireResponse, error) {
	_, sects, err := parseSections(buf, nil)
	if err != nil {
		return nil, err
	}
	resp := &WireResponse{}
	var solPayload []byte
	var solCount uint32
	for _, s := range sects {
		payload := buf[s.off : uint64(s.off)+uint64(s.length)]
		switch s.typ {
		case secSolutions:
			if s.count == 0 || s.length%8 != 0 || uint64(s.length) < 8*uint64(s.count) ||
				uint64(s.length/8)%uint64(s.count) != 0 {
				return nil, fmt.Errorf("solutions section: %d bytes for %d vectors", s.length, s.count)
			}
			solPayload, solCount = payload, s.count
		case secRespFp:
			if s.length != 8 {
				return nil, fmt.Errorf("fp section: %d bytes, want 8", s.length)
			}
			if fp := binary.LittleEndian.Uint64(payload); fp != 0 {
				resp.Fp = fmt.Sprintf("%016x", fp)
			}
		case secInfo:
			if s.length != 16 {
				return nil, fmt.Errorf("info section: %d bytes, want 16", s.length)
			}
			resp.Fused = int(binary.LittleEndian.Uint32(payload))
			resp.Width = int(binary.LittleEndian.Uint32(payload[4:]))
			resp.Executed = int64(binary.LittleEndian.Uint64(payload[8:]))
		case secStrategy:
			resp.Strategy = string(payload)
		case secRespTraceID:
			if s.length != 8 {
				return nil, fmt.Errorf("trace_id section: %d bytes, want 8", s.length)
			}
			if tid := binary.LittleEndian.Uint64(payload); tid != 0 {
				resp.TraceID = fmt.Sprintf("%016x", tid)
			}
		case secError:
			resp.Status = int(s.count)
			resp.ErrMsg = string(payload)
		default:
			return nil, fmt.Errorf("unknown response section type %d", s.typ)
		}
	}
	if solPayload != nil {
		k := int(solCount)
		n := len(solPayload) / 8 / k
		resp.X = make([][]float64, k)
		for j := 0; j < k; j++ {
			row := make([]float64, n)
			for i := range row {
				row[i] = math.Float64frombits(binary.LittleEndian.Uint64(solPayload[8*(j*n+i):]))
			}
			resp.X[j] = row
		}
	}
	return resp, nil
}
