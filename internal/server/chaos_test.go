package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"doconsider/internal/sparse"
)

// TestChaosConcurrentCancellation is the serving-path chaos test the CI
// race matrix runs with the adaptive planner active: concurrent clients
// hammer one server with a mix of structures (different sizes, both
// solve directions) while random per-request deadlines fire mid-window
// and random client-side cancellations tear requests away at arbitrary
// points. Every request must resolve to a definite outcome — a solution
// that is bit-identical to the unfused reference, a timeout, or a
// cancellation — with no hung waiter, no panic, and no race; a final
// graceful drain must complete with traffic still arriving.
func TestChaosConcurrentCancellation(t *testing.T) {
	srv, err := New(Config{
		Procs:          4,
		Kind:           KindAuto, // the planner decides per structure
		CacheCap:       4,        // small enough that eviction happens under the mix
		Coalesce:       CoalesceConfig{Window: 300 * time.Microsecond, Width: 8},
		Admission:      AdmissionConfig{MaxInFlight: 32},
		DefaultTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Mixed structures: sizes and directions differ so plans, cache
	// entries and coalesce keys churn against each other.
	type problem struct {
		l     *sparse.CSR
		lower bool
	}
	var problems []problem
	for _, m := range []int{4, 6, 8, 10} {
		full := testFactor(m) // lower factor of an m x m mesh
		problems = append(problems, problem{full, true})
	}
	upper := testFactor(7).Transpose()
	problems = append(problems, problem{upper, false})

	// Reference solutions per (problem, rhs-seed), computed unfused.
	ref := func(p problem, b []float64) []float64 {
		x := make([]float64, p.l.N)
		if p.lower {
			if err := ForwardRef(p.l, x, b); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := BackwardRef(p.l, x, b); err != nil {
				t.Fatal(err)
			}
		}
		return x
	}

	const (
		clients     = 8
		perClient   = 25
		cancelEvery = 5 // every 5th request gets a tiny client-side deadline
	)
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		succeeded int
		timedOut  int
		cancelled int
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			client := ts.Client()
			for r := 0; r < perClient; r++ {
				p := problems[rng.Intn(len(problems))]
				b := randVec(p.l.N, int64(c*1000+r))
				req := SolveRequest{
					N: p.l.N, RowPtr: p.l.RowPtr, ColIdx: p.l.ColIdx, Val: p.l.Val,
					Lower: &p.lower, B: [][]float64{b},
				}
				if rng.Intn(3) == 0 {
					req.TimeoutMs = 1 + rng.Intn(3) // server-side deadline, may fire mid-window
				}
				body, err := json.Marshal(req)
				if err != nil {
					t.Error(err)
					return
				}
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if r%cancelEvery == cancelEvery-1 {
					// Client abandons the request at a random point in the
					// window; other waiters in the same window must be
					// undisturbed.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(1500))*time.Microsecond)
				}
				hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
					ts.URL+"/v1/trisolve", bytes.NewReader(body))
				if err != nil {
					cancel()
					t.Error(err)
					return
				}
				resp, err := client.Do(hreq)
				if err != nil {
					cancel()
					// Client-side cancellation; the server releases the
					// waiter on its own schedule.
					mu.Lock()
					cancelled++
					mu.Unlock()
					continue
				}
				var sr SolveResponse
				decErr := json.NewDecoder(resp.Body).Decode(&sr)
				resp.Body.Close()
				cancel()
				switch resp.StatusCode {
				case http.StatusOK:
					if decErr != nil {
						t.Errorf("client %d: bad 200 body: %v", c, decErr)
						return
					}
					want := ref(p, b)
					for i := range want {
						if sr.X[0][i] != want[i] {
							t.Errorf("client %d req %d: solution differs at %d", c, r, i)
							return
						}
					}
					if sr.Strategy == "" {
						t.Errorf("client %d: 200 response carries no strategy", c)
						return
					}
					mu.Lock()
					succeeded++
					mu.Unlock()
				case http.StatusGatewayTimeout, http.StatusServiceUnavailable, http.StatusTooManyRequests:
					mu.Lock()
					timedOut++
					mu.Unlock()
				default:
					t.Errorf("client %d req %d: unexpected status %d", c, r, resp.StatusCode)
					return
				}
			}
		}(c)
	}

	// Drain with stragglers still in flight: Shutdown must not hang.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("chaos clients did not finish — a waiter hung")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain after chaos: %v", err)
	}

	if succeeded == 0 {
		t.Fatal("no request succeeded; the chaos mix is not exercising the solve path")
	}
	st := srv.Stats()
	if len(st.Planner.Counts) == 0 {
		t.Error("planner made no recorded decisions under KindAuto")
	}
	t.Logf("chaos: %d ok, %d timed out/shed, %d client-cancelled; planner counts %v",
		succeeded, timedOut, cancelled, st.Planner.Counts)
}

// ForwardRef and BackwardRef run the executor-arithmetic sequential
// reference (reciprocal diagonal, like every strategy body) so chaos
// comparisons can be bit-exact.
func ForwardRef(l *sparse.CSR, x, b []float64) error {
	return sequentialRef(l, x, b, true)
}

// BackwardRef is ForwardRef for upper factors.
func BackwardRef(u *sparse.CSR, x, b []float64) error {
	return sequentialRef(u, x, b, false)
}

func sequentialRef(l *sparse.CSR, x, b []float64, lower bool) error {
	inv := make([]float64, l.N)
	for i := 0; i < l.N; i++ {
		d := l.At(i, i)
		if d == 0 {
			return fmt.Errorf("zero diagonal at %d", i)
		}
		inv[i] = 1 / d
	}
	idx := func(k int) int {
		if lower {
			return k
		}
		return l.N - 1 - k
	}
	for k := 0; k < l.N; k++ {
		i := idx(k)
		cols, vals := l.Row(i)
		s := b[i]
		for q, c := range cols {
			if int(c) != i {
				s -= vals[q] * x[c]
			}
		}
		x[i] = s * inv[i]
	}
	return nil
}
