package server

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"doconsider/internal/arena"
	"doconsider/internal/executor"
	"doconsider/internal/sparse"
	"doconsider/internal/trisolve"
)

// The coalescer is the cross-request analogue of PR 2's per-request
// batching: requests whose factors share a structural fingerprint and
// arrive within a configurable window (or until a width cap fills) are
// fused into one trisolve.SolveGroup pass, so concurrent clients share
// both the inspector run (via the plan cache) and the executor pass.
// This is where the paper's amortization argument meets multi-tenant
// load — the more clients recur on one structure, the closer the
// per-request cost gets to pure arithmetic.

// coalesceKey groups requests that can share an executor pass: same
// sparsity fingerprint, same dimension, same solve direction, same
// priority class — a latency-class request is never parked in (or
// sealed behind) a batch window. (The plan configuration — procs,
// executor kind — is server-global.)
type coalesceKey struct {
	fp    uint64
	n     int
	lower bool
	class Class
}

// SolveInfo describes how one request was executed.
type SolveInfo struct {
	Fused    int    // requests that shared the executor pass (>= 1)
	Width    int    // total right-hand sides in the pass
	Strategy string // executor strategy the pass ran under (planner-chosen for "auto")
	Metrics  executor.Metrics
	// PlanNs/ExecNs are the pass's own latency split, measured on the
	// pass goroutine: plan resolution (memo/cache lookup and, on a
	// miss, the build) and the executor run itself. A traced request
	// subtracts them from its submit round-trip to expose pure
	// coalescing wait.
	PlanNs int64
	ExecNs int64
}

// coReq is one request waiting in (or executed by) the coalescer.
type coReq struct {
	l        *sparse.CSR
	lower    bool
	class    Class // priority class; part of the coalescing key
	xs, bs   [][]float64
	hint     *driftHint // plan-repair ancestor, when the request drifted
	deadline time.Time  // caller ctx deadline; zero = none
	group    *coGroup   // the pending group this request joined, if any
	// held is the request arena's pass reference (binary wire path):
	// released exactly once, when the pass wakes the request or the
	// request withdraws — whichever happens — so a detached fused pass
	// can keep writing xs after the submitting handler has returned.
	held *arena.Arena
	done chan struct{}
	err  error
	info SolveInfo
	solo [1]*coReq // member-slice scratch for the solo path
	// Observability (optional, both nil-safe): lc receives per-level
	// executor timing when this request was chosen for level sampling
	// (honored on the single-member memoized fast path — the warm shape
	// level timing exists for; group passes run unclocked); bstats
	// receives the plan build-cost breakdown when this request's pass
	// triggers a build.
	lc     trisolve.LevelClock
	bstats *trisolve.BuildStats
}

// soloScratch returns a one-member slice over the request's own scratch
// array, so the solo path builds its member list without allocating.
func (r *coReq) soloScratch() []*coReq {
	r.solo[0] = r
	return r.solo[:]
}

// release drops the pass reference, once.
func (r *coReq) releaseHeld() {
	if r.held != nil {
		a := r.held
		r.held = nil
		a.Release()
	}
}

// coGroup is a window of requests accumulating toward one fused pass.
type coGroup struct {
	key     coalesceKey
	members []*coReq
	width   int // total RHS across members
	timer   *time.Timer
	sealed  bool // removed from pending; execution is scheduled
}

// CoalesceStats is a point-in-time snapshot of coalescer effectiveness.
type CoalesceStats struct {
	Requests uint64  `json:"requests"`  // requests submitted
	Passes   uint64  `json:"passes"`    // executor passes run
	Fused    uint64  `json:"fused"`     // requests that shared a pass with another
	Solo     uint64  `json:"solo"`      // requests that ran alone
	Rate     float64 `json:"rate"`      // Fused / Requests
	MaxFused uint64  `json:"max_fused"` // largest request count in one pass
}

// Coalescer fuses structurally identical solve requests into shared
// executor passes. A window of zero disables fusion: every request runs
// solo, synchronously, under its own context.
//
// The window is an upper bound, not a tax: when an inflight hook is
// installed (see NewCoalescer) and every admitted request is already
// parked in a window or blocked on a sealed pass, no request remains
// that could still join — so all pending windows seal immediately
// instead of stalling closed-loop clients for the full window.
type Coalescer struct {
	// windows holds the per-class base batching windows (batch, latency).
	// They are upper bounds: windowFor shrinks a class's effective window
	// toward zero when its observed arrival rate could not fill a pass.
	windows  [numClasses]time.Duration
	arrival  [numClasses]arrivalRate
	maxWidth int // cap on total RHS per fused pass
	procs    int
	kind     string // executor kind registry name, or KindAuto for planner choice
	cache    *trisolve.PlanCache
	baseCtx  context.Context // bounds fused passes; solo passes use the request context
	inflight func() int64    // admitted solve requests (nil disables early sealing)

	mu       sync.Mutex
	pending  map[coalesceKey]*coGroup
	running  map[coalesceKey]int // executor passes in flight, by key
	parked   int                 // requests waiting in unsealed windows
	blocked  int                 // requests waiting on sealed passes
	draining bool
	wg       sync.WaitGroup // outstanding fused-pass goroutines

	// memo holds a bound BatchSolver per hot factor for the
	// single-member fast path; see boundSolver.
	memoMu sync.Mutex
	memo   []memoEntry

	requests *Counter
	passes   *Counter
	fusedC   *Counter
	soloC    *Counter
	widthH   *Histogram
	maxFused *Gauge
}

// NewCoalescer returns a coalescer executing over cache with the given
// plan shape; kind is an executor registry name, or KindAuto to let the
// planner choose per structure. Metrics are registered on reg under the
// loops_coalesce_* families; reg may not be nil. inflight, when non-nil,
// reports the solve requests currently admitted by the caller and
// enables quiescence-based early sealing.
// latencyWindow is the batching window for latency-class requests
// (usually a small fraction of window; <= 0 disables latency-class
// coalescing entirely).
func NewCoalescer(baseCtx context.Context, cache *trisolve.PlanCache, reg *Registry,
	window, latencyWindow time.Duration, maxWidth, procs int, kind string, inflight func() int64) *Coalescer {
	if maxWidth < 1 {
		maxWidth = 1
	}
	c := &Coalescer{
		windows:  [numClasses]time.Duration{ClassBatch: window, ClassLatency: latencyWindow},
		maxWidth: maxWidth,
		procs:    procs,
		kind:     kind,
		cache:    cache,
		baseCtx:  baseCtx,
		inflight: inflight,
		pending:  make(map[coalesceKey]*coGroup),
		running:  make(map[coalesceKey]int),
		requests: reg.Counter("loops_coalesce_requests_total", "solve requests submitted to the coalescer", nil),
		passes:   reg.Counter("loops_coalesce_passes_total", "fused executor passes run", nil),
		fusedC:   reg.Counter("loops_coalesce_fused_requests_total", "requests that shared an executor pass", nil),
		soloC:    reg.Counter("loops_coalesce_solo_requests_total", "requests that ran alone", nil),
		widthH:   reg.Histogram("loops_coalesce_pass_width", "right-hand sides per executor pass", nil, WidthBuckets),
		maxFused: reg.Gauge("loops_coalesce_max_fused", "largest request count fused into one pass", nil),
	}
	for cl := 0; cl < numClasses; cl++ {
		cl := Class(cl)
		reg.GaugeFunc("loops_coalesce_window_ns", "effective load-adaptive coalescing window by class",
			Labels{{"class", cl.String()}}, func() float64 { return float64(c.windowFor(cl)) })
	}
	return c
}

// arrivalRate tracks one class's inter-arrival interval as a lock-free
// EWMA (0.75 old / 0.25 new). Racing stores lose an update, never
// corrupt the estimate — it is an adaptation signal, not accounting.
type arrivalRate struct {
	lastNs atomic.Int64 // UnixNano of the previous arrival; 0 = none yet
	ivNs   atomic.Int64 // EWMA inter-arrival nanoseconds; 0 = no signal
}

func (r *arrivalRate) note(nowNs int64) {
	last := r.lastNs.Swap(nowNs)
	if last == 0 {
		return
	}
	iv := nowNs - last
	if iv < 0 {
		return
	}
	old := r.ivNs.Load()
	if old == 0 {
		r.ivNs.Store(iv)
		return
	}
	r.ivNs.Store(old - old/4 + iv/4)
}

// windowFor returns class's effective batching window: the configured
// base, shrunk when the observed arrival rate could not fill a pass
// within it. expected = base/interval estimates the arrivals one full
// window would collect; at >= 2 the full window pays for itself, at
// <= 0.5 waiting buys nothing (run solo), and the ramp between is
// linear. Before any arrival signal exists the base applies — a burst
// after idle still coalesces.
func (c *Coalescer) windowFor(class Class) time.Duration {
	base := c.windows[class]
	if base <= 0 {
		return 0
	}
	iv := c.arrival[class].ivNs.Load()
	if iv <= 0 {
		return base
	}
	expected := float64(base) / float64(iv)
	switch {
	case expected >= 2:
		return base
	case expected <= 0.5:
		return 0
	}
	return time.Duration(float64(base) * (expected - 0.5) / 1.5)
}

// planOpts returns the plan-cache options the coalescer's passes use:
// the configured processor count, plus a pinned executor kind unless the
// coalescer runs in KindAuto mode (then the planner decides per
// structure and the decision is recorded in the plan cache's stats). An
// unresolvable kind name is an error — Server.New validates its config
// up front, but a directly constructed Coalescer must not silently fall
// back to adaptive planning on a typo.
func (c *Coalescer) planOpts() ([]trisolve.Option, error) {
	opts := []trisolve.Option{trisolve.WithProcs(c.procs)}
	if c.kind == KindAuto {
		return opts, nil
	}
	k, err := executor.KindByName(c.kind)
	if err != nil {
		return nil, err
	}
	return append(opts, trisolve.WithKind(k)), nil
}

// Submit solves l (lower or upper triangular) against the right-hand
// sides bs, possibly fused with concurrent structurally identical
// requests, and returns the solutions. hint, when non-nil, names the
// plan-cache ancestor the factor drifted from (base_fp+edits requests)
// so a plan miss repairs instead of re-inspecting. ctx cancellation
// while the request is still waiting in its window withdraws it without
// disturbing the other waiters; once the fused pass has started the pass
// runs to completion (under the coalescer's base context) but the caller
// still returns promptly with ctx.Err().
func (c *Coalescer) Submit(ctx context.Context, l *sparse.CSR, lower bool, bs [][]float64, hint *driftHint) ([][]float64, SolveInfo, error) {
	xs := make([][]float64, len(bs))
	for j := range xs {
		xs[j] = make([]float64, l.N)
	}
	req := &coReq{l: l, lower: lower, xs: xs, bs: bs, hint: hint}
	info, err := c.submit(ctx, req)
	return xs, info, err
}

// SubmitInto is Submit with caller-owned request state: the solutions
// land in req.xs (the binary wire path points them into the response
// frame so the solver writes results in place), and req itself is
// pooled by the caller. req.held, when set, is the request arena's pass
// reference — see coReq. On the warm solo path this performs no heap
// allocations.
func (c *Coalescer) SubmitInto(ctx context.Context, req *coReq) (SolveInfo, error) {
	return c.submit(ctx, req)
}

func (c *Coalescer) submit(ctx context.Context, req *coReq) (SolveInfo, error) {
	c.requests.Add(uint64(1))
	key := coalesceKey{fp: req.l.StructureFingerprint(), n: req.l.N, lower: req.lower, class: req.class}
	if d, ok := ctx.Deadline(); ok {
		req.deadline = d
	}
	c.arrival[req.class].note(time.Now().UnixNano())
	window := c.windowFor(req.class)

	if window <= 0 || c.maxWidth <= 1 || len(req.bs) >= c.maxWidth {
		// Fusion disabled for this class (configured off, or the arrival
		// rate says waiting buys nothing) or the request alone fills a
		// pass: run solo, synchronously, with the request's own deadline
		// driving RunCtx.
		return c.submitSolo(ctx, key, req)
	}

	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		return c.submitSolo(ctx, key, req)
	}
	// Window path: the request parks and may be woken by a detached
	// pass goroutine, which needs a wake channel.
	req.done = make(chan struct{})
	g := c.pending[key]
	if g != nil && g.width+len(req.bs) > c.maxWidth {
		// Width-cap overflow: seal the full window now (it executes as
		// its own pass) and start a fresh one for this request.
		c.sealLocked(g)
		g = nil
	}
	if g == nil {
		g = &coGroup{key: key}
		c.pending[key] = g
		// The window in force at group creation rules the whole group:
		// later arrivals shorten future groups, not this one.
		g.timer = time.AfterFunc(window, func() { c.flushGroup(g) })
	}
	g.members = append(g.members, req)
	g.width += len(req.bs)
	req.group = g
	c.parked++
	if g.width >= c.maxWidth {
		c.sealLocked(g)
	} else {
		c.sealIfQuiescentLocked()
	}
	c.mu.Unlock()

	select {
	case <-req.done:
		return req.info, req.err
	case <-ctx.Done():
		c.withdraw(req)
		select {
		case <-req.done:
			// The pass had already started (or finished) when the context
			// fired; the results are valid, so return them.
			return req.info, req.err
		default:
			return SolveInfo{}, ctx.Err()
		}
	}
}

// submitSolo runs req as its own synchronous pass, counted as blocked so
// quiescence detection knows it can no longer join a window.
func (c *Coalescer) submitSolo(ctx context.Context, key coalesceKey, req *coReq) (SolveInfo, error) {
	c.mu.Lock()
	c.blocked++
	c.running[key]++
	c.sealIfQuiescentLocked()
	c.mu.Unlock()
	c.execute(ctx, key, req.soloScratch())
	c.passDone(key, 1)
	return req.info, req.err
}

// passDone retires one finished pass for key: its waiters are no
// longer blocked, and — the group-commit chain — a window that filled up
// behind the pass seals now, fusing everything that accumulated while
// the key was busy.
func (c *Coalescer) passDone(key coalesceKey, members int) {
	c.mu.Lock()
	c.blocked -= members
	c.running[key]--
	if c.running[key] <= 0 {
		delete(c.running, key)
		if g, ok := c.pending[key]; ok {
			c.sealLocked(g)
		}
	}
	c.sealIfQuiescentLocked()
	c.mu.Unlock()
}

// withdraw removes req from its pending group if the group has not been
// sealed yet; the remaining waiters are untouched (an emptied group is
// dissolved so its timer does not fire a zero-member pass).
func (c *Coalescer) withdraw(req *coReq) {
	c.mu.Lock()
	defer c.mu.Unlock()
	g := req.group
	if g == nil || g.sealed {
		return
	}
	for i, m := range g.members {
		if m == req {
			g.members = append(g.members[:i], g.members[i+1:]...)
			g.width -= len(req.bs)
			c.parked--
			// The pass will never see this request; drop its arena
			// reference here (still under c.mu, so seal cannot race).
			req.releaseHeld()
			break
		}
	}
	if len(g.members) == 0 {
		g.sealed = true
		g.timer.Stop()
		delete(c.pending, g.key)
	}
}

// sealIfQuiescentLocked seals pending windows once no admitted request
// remains outside one: with the caller's inflight count fully accounted
// for by parked and pass-blocked requests, nobody is left who could
// still join, and waiting out the timers would only add latency. Windows
// whose key has a pass in flight are held back — arrivals keep
// accumulating behind the running pass (they would only serialize on the
// shared strategy anyway) and seal together when it completes, the
// group-commit chain in passDone. This pairing is what makes the window
// an upper bound for open traffic without stalling closed-loop clients.
// Callers hold c.mu.
func (c *Coalescer) sealIfQuiescentLocked() {
	if c.inflight == nil || c.parked == 0 {
		return
	}
	if int64(c.parked+c.blocked) < c.inflight() {
		return
	}
	groups := make([]*coGroup, 0, len(c.pending))
	for _, g := range c.pending {
		if c.running[g.key] == 0 {
			groups = append(groups, g)
		}
	}
	for _, g := range groups {
		c.sealLocked(g)
	}
}

// Nudge re-evaluates the quiescence condition. The server calls it as
// admitted requests leave, so parked windows never outlive the traffic
// that could have joined them.
func (c *Coalescer) Nudge() {
	c.mu.Lock()
	c.sealIfQuiescentLocked()
	c.mu.Unlock()
}

// flushGroup seals g when its window timer fires.
func (c *Coalescer) flushGroup(g *coGroup) {
	c.mu.Lock()
	if !g.sealed {
		c.sealLocked(g)
	}
	c.mu.Unlock()
}

// sealLocked removes g from the pending set and schedules its pass; its
// members move from parked to pass-blocked until the pass completes.
// Callers hold c.mu.
func (c *Coalescer) sealLocked(g *coGroup) {
	g.sealed = true
	g.timer.Stop()
	delete(c.pending, g.key)
	members := g.members
	c.parked -= len(members)
	c.blocked += len(members)
	c.running[g.key]++
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		ctx, cancel := c.passCtx(members)
		defer cancel()
		c.execute(ctx, g.key, members)
		c.passDone(g.key, len(members))
	}()
}

// passCtx bounds a fused pass by the slackest member deadline (every
// member will have returned by then, so running longer only pins the
// worker pool); a member with no deadline leaves the pass unbounded.
func (c *Coalescer) passCtx(members []*coReq) (context.Context, context.CancelFunc) {
	var latest time.Time
	for _, m := range members {
		if m.deadline.IsZero() {
			return c.baseCtx, func() {}
		}
		if m.deadline.After(latest) {
			latest = m.deadline
		}
	}
	return context.WithDeadline(c.baseCtx, latest)
}

// execute runs one fused (or solo) pass for members and wakes every
// waiter. Members that reference the same factor object — the normal
// case when clients resubmit by fingerprint — are merged into one
// BatchProblem, so the pass reads each row's values once for all their
// right-hand sides (the cross-request extension of SolveBatch's
// row-sharing). Fused members' done channels are closed even on error,
// each carrying the pass error.
func (c *Coalescer) execute(ctx context.Context, key coalesceKey, members []*coReq) {
	var metrics executor.Metrics
	var err error
	strategy := ""
	width := 0
	for _, m := range members {
		width += len(m.bs)
	}
	var planNs, execNs int64
	if len(members) == 1 && members[0].hint == nil {
		// Single-member fast path: solve through the memoized bound
		// solver for this factor — no group assembly, no plan lease, no
		// per-call body closure. This is the shape of the warm
		// fp-resubmission path, and it runs allocation-free (the stage
		// stamps below are two clock reads).
		m := members[0]
		var sv *trisolve.BatchSolver
		t0 := time.Now()
		if sv, strategy, err = c.boundSolver(m.l, key.lower, m.bstats); err == nil {
			t1 := time.Now()
			planNs = t1.Sub(t0).Nanoseconds()
			if m.lc != nil {
				metrics, err = sv.SolveTimed(ctx, m.xs, m.bs, m.lc)
			} else {
				metrics, err = sv.Solve(ctx, m.xs, m.bs)
			}
			execNs = time.Since(t1).Nanoseconds()
		} else {
			planNs = time.Since(t0).Nanoseconds()
		}
	} else {
		metrics, strategy, planNs, execNs, err = c.executeGroup(ctx, key, members)
	}

	c.passes.Inc()
	c.widthH.Observe(float64(width))
	if len(members) > 1 {
		c.fusedC.Add(uint64(len(members)))
		c.maxFused.Max(int64(len(members)))
	} else {
		c.soloC.Inc()
	}
	info := SolveInfo{Fused: len(members), Width: width, Strategy: strategy, Metrics: metrics,
		PlanNs: planNs, ExecNs: execNs}
	for _, m := range members {
		m.err = err
		m.info = info
		m.releaseHeld()
		if m.done != nil {
			close(m.done)
		}
	}
}

// executeGroup is the fused (or drift-hinted) pass body: members merge
// into BatchProblems by factor identity and run as one SolveGroup pass
// under a freshly leased plan.
func (c *Coalescer) executeGroup(ctx context.Context, key coalesceKey, members []*coReq) (metrics executor.Metrics, strategy string, planNs, execNs int64, err error) {
	group := make([]trisolve.BatchProblem, 0, len(members))
	byFactor := make(map[*sparse.CSR]int, len(members))
	for _, m := range members {
		if j, ok := byFactor[m.l]; ok {
			group[j].Xs = append(group[j].Xs, m.xs...)
			group[j].Bs = append(group[j].Bs, m.bs...)
		} else {
			byFactor[m.l] = len(group)
			group = append(group, trisolve.BatchProblem{
				L:  m.l,
				Xs: append(make([][]float64, 0, len(m.xs)), m.xs...),
				Bs: append(make([][]float64, 0, len(m.bs)), m.bs...),
			})
		}
	}
	t0 := time.Now()
	var opts []trisolve.Option
	opts, err = c.planOpts()
	if err == nil {
		// Any member's drift hint serves the whole pass: fused members
		// share the structure, and the repair happens at most once inside
		// the plan cache's singleflight builder.
		for _, m := range members {
			if m.hint != nil {
				opts = append(opts, trisolve.WithDriftHint(m.hint.baseStructFp, m.hint.rows))
				break
			}
		}
		// The first member carrying a build-stats sink receives the pass's
		// plan build-cost breakdown (filled only when the cache actually
		// builds; a hit leaves it zero).
		for _, m := range members {
			if m.bstats != nil {
				opts = append(opts, trisolve.WithBuildStats(m.bstats))
				break
			}
		}
		var plan *trisolve.Plan
		if plan, err = c.cache.Get(members[0].l, key.lower, opts...); err == nil {
			strategy = plan.Kind.String()
			t1 := time.Now()
			planNs = t1.Sub(t0).Nanoseconds()
			metrics, err = plan.SolveGroupCtx(ctx, group)
			execNs = time.Since(t1).Nanoseconds()
			if cerr := plan.Close(); err == nil {
				err = cerr
			}
		}
	}
	if planNs == 0 {
		planNs = time.Since(t0).Nanoseconds()
	}
	return metrics, strategy, planNs, execNs, err
}

// memoCap bounds the factor-bound solver memo. Eight covers the hot
// factors of a serving mix without pinning evicted plans for long.
const memoCap = 8

// memoEntry is one factor's bound solver: a leased plan (kept open, so
// the lease pins the skeleton in the plan cache) plus the BatchSolver
// bound to it.
type memoEntry struct {
	l      *sparse.CSR
	lower  bool
	plan   *trisolve.Plan
	solver *trisolve.BatchSolver
	name   string // plan.Kind.String(), resolved once
}

// boundSolver returns the memoized bound solver for (l, lower),
// building and memoizing it on first use. Factor identity (the pointer)
// keys the memo: the server's by-fingerprint cache hands out one
// resident *CSR per content fingerprint, and factor values are
// immutable once cached, so a pointer hit guarantees the solver's
// precomputed state is current. A warm hit costs a mutex and a short
// linear scan — no allocation. bstats, when non-nil, receives the plan
// build-cost breakdown if the miss path actually builds a plan.
// Warm pre-builds the plan for l through the same plan-cache options
// real traffic uses and leaves the cache entry resident and the bound
// solver memoized. It is the sharded tier's rebalance tool: a gaining
// replica warms incoming fingerprints before cutover so the first
// routed request hits a built plan instead of the inspector.
func (c *Coalescer) Warm(l *sparse.CSR, lower bool) error {
	_, _, err := c.boundSolver(l, lower, nil)
	return err
}

func (c *Coalescer) boundSolver(l *sparse.CSR, lower bool, bstats *trisolve.BuildStats) (*trisolve.BatchSolver, string, error) {
	c.memoMu.Lock()
	for i := range c.memo {
		e := &c.memo[i]
		if e.l == l && e.lower == lower {
			sv, name := e.solver, e.name
			c.memoMu.Unlock()
			// The memo answered a plan lookup the inspector did not run
			// for; keep the cache's hit-rate telemetry truthful about it.
			c.cache.NoteHit()
			return sv, name, nil
		}
	}
	c.memoMu.Unlock()

	// Miss: lease a plan outside the memo lock (plan building can be
	// expensive) and publish it, racing peers resolved by a re-check.
	opts, err := c.planOpts()
	if err != nil {
		return nil, "", err
	}
	if bstats != nil {
		opts = append(opts, trisolve.WithBuildStats(bstats))
	}
	plan, err := c.cache.Get(l, lower, opts...)
	if err != nil {
		return nil, "", err
	}
	entry := memoEntry{l: l, lower: lower, plan: plan, solver: plan.Bind(), name: plan.Kind.String()}
	c.memoMu.Lock()
	for i := range c.memo {
		e := &c.memo[i]
		if e.l == l && e.lower == lower {
			sv, name := e.solver, e.name
			c.memoMu.Unlock()
			_ = plan.Close() // lost the race; drop the extra lease
			return sv, name, nil
		}
	}
	var evicted *trisolve.Plan
	if len(c.memo) >= memoCap {
		evicted = c.memo[0].plan
		copy(c.memo, c.memo[1:])
		c.memo[len(c.memo)-1] = entry
	} else {
		c.memo = append(c.memo, entry)
	}
	c.memoMu.Unlock()
	if evicted != nil {
		_ = evicted.Close()
	}
	return entry.solver, entry.name, nil
}

// releaseMemo drops every memoized plan lease. Called when the
// coalescer drains; solves in flight have already completed.
func (c *Coalescer) releaseMemo() {
	c.memoMu.Lock()
	memo := c.memo
	c.memo = nil
	c.memoMu.Unlock()
	for i := range memo {
		_ = memo[i].plan.Close()
	}
}

// Flush seals every pending window immediately. It is called on drain so
// accepted requests finish without waiting out their windows.
func (c *Coalescer) Flush() {
	c.mu.Lock()
	groups := make([]*coGroup, 0, len(c.pending))
	for _, g := range c.pending {
		groups = append(groups, g)
	}
	for _, g := range groups {
		c.sealLocked(g)
	}
	c.mu.Unlock()
}

// BeginDrain routes subsequent Submits to solo passes and flushes every
// pending window, so requests already accepted stop waiting for traffic
// that will never come.
func (c *Coalescer) BeginDrain() {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	c.Flush()
}

// Drain is BeginDrain plus a wait for every fused pass to finish.
func (c *Coalescer) Drain() {
	c.BeginDrain()
	c.wg.Wait()
	c.releaseMemo()
}

// DrainCtx is Drain bounded by ctx: it returns ctx.Err() if passes are
// still running at the deadline (the caller can then cancel the
// coalescer's base context to abort them and Drain again).
func (c *Coalescer) DrainCtx(ctx context.Context) error {
	c.BeginDrain()
	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		c.releaseMemo()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stats returns a snapshot of the coalescer counters.
func (c *Coalescer) Stats() CoalesceStats {
	s := CoalesceStats{
		Requests: c.requests.Value(),
		Passes:   c.passes.Value(),
		Fused:    c.fusedC.Value(),
		Solo:     c.soloC.Value(),
		MaxFused: uint64(c.maxFused.Value()),
	}
	if s.Requests > 0 {
		s.Rate = float64(s.Fused) / float64(s.Requests)
	}
	return s
}
