package server

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); math.Abs(got-5.56) > 1e-12 {
		t.Fatalf("sum = %v, want 5.56", got)
	}
	cases := []struct{ q, want float64 }{
		{0.2, 0.01}, {0.4, 0.01}, {0.6, 0.1}, {0.8, 1}, {1.0, math.Inf(1)},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := NewHistogram([]float64{1}).Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
}

func TestHistogramObserveOnBoundary(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(1) // le="1" is inclusive in Prometheus semantics
	if got := h.Quantile(1); got != 1 {
		t.Fatalf("boundary observation landed at %v, want bucket 1", got)
	}
}

func TestRegistryPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_requests_total", "requests", Labels{{"code", "200"}})
	c.Add(3)
	g := reg.Gauge("test_in_flight", "in flight", nil)
	g.Set(7)
	reg.GaugeFunc("test_ratio", "a computed ratio", nil, func() float64 { return 0.5 })
	h := reg.Histogram("test_seconds", "latency", Labels{{"endpoint", "x"}}, []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(50)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# HELP test_requests_total requests",
		"# TYPE test_requests_total counter",
		`test_requests_total{code="200"} 3`,
		"# TYPE test_in_flight gauge",
		"test_in_flight 7",
		"test_ratio 0.5",
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{endpoint="x",le="0.1"} 1`,
		`test_seconds_bucket{endpoint="x",le="1"} 2`,
		`test_seconds_bucket{endpoint="x",le="+Inf"} 3`,
		`test_seconds_sum{endpoint="x"} 50.55`,
		`test_seconds_count{endpoint="x"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestWithLE(t *testing.T) {
	if got := withLE("", "0.5"); got != `{le="0.5"}` {
		t.Errorf("withLE bare = %s", got)
	}
	if got := withLE(`{a="b"}`, "+Inf"); got != `{a="b",le="+Inf"}` {
		t.Errorf("withLE merged = %s", got)
	}
}
