package server

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); math.Abs(got-5.56) > 1e-12 {
		t.Fatalf("sum = %v, want 5.56", got)
	}
	cases := []struct{ q, want float64 }{
		{0.2, 0.01}, {0.4, 0.01}, {0.6, 0.1}, {0.8, 1}, {1.0, math.Inf(1)},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := NewHistogram([]float64{1}).Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
}

func TestHistogramObserveOnBoundary(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(1) // le="1" is inclusive in Prometheus semantics
	if got := h.Quantile(1); got != 1 {
		t.Fatalf("boundary observation landed at %v, want bucket 1", got)
	}
}

func TestRegistryPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_requests_total", "requests", Labels{{"code", "200"}})
	c.Add(3)
	g := reg.Gauge("test_in_flight", "in flight", nil)
	g.Set(7)
	reg.GaugeFunc("test_ratio", "a computed ratio", nil, func() float64 { return 0.5 })
	h := reg.Histogram("test_seconds", "latency", Labels{{"endpoint", "x"}}, []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(50)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# HELP test_requests_total requests",
		"# TYPE test_requests_total counter",
		`test_requests_total{code="200"} 3`,
		"# TYPE test_in_flight gauge",
		"test_in_flight 7",
		"test_ratio 0.5",
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{endpoint="x",le="0.1"} 1`,
		`test_seconds_bucket{endpoint="x",le="1"} 2`,
		`test_seconds_bucket{endpoint="x",le="+Inf"} 3`,
		`test_seconds_sum{endpoint="x"} 50.55`,
		`test_seconds_count{endpoint="x"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestHistogramRenderEmpty pins the exposition of a histogram that has
// never been observed: every bucket (including +Inf), the sum and the
// count must render as zeros rather than being omitted — scrapers
// difference counters and need the series present from the first
// scrape.
func TestHistogramRenderEmpty(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("empty_seconds", "never observed", Labels{{"stage", "idle"}}, []float64{0.1, 1})
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`empty_seconds_bucket{stage="idle",le="0.1"} 0`,
		`empty_seconds_bucket{stage="idle",le="1"} 0`,
		`empty_seconds_bucket{stage="idle",le="+Inf"} 0`,
		`empty_seconds_sum{stage="idle"} 0`,
		`empty_seconds_count{stage="idle"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("empty histogram exposition missing %q:\n%s", want, text)
		}
	}
}

// TestHistogramInfBucket pins the overflow bucket: observations beyond
// every finite bound must land only in +Inf, count toward count/sum,
// and report an infinite quantile (there is no finite upper bound to
// answer with).
func TestHistogramInfBucket(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(math.MaxFloat64)
	h.Observe(2)
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	if got := h.Quantile(0.5); !math.IsInf(got, 1) {
		t.Fatalf("overflow quantile = %v, want +Inf", got)
	}
	reg := NewRegistry()
	hr := reg.Histogram("inf_seconds", "overflow", nil, []float64{1})
	hr.Observe(2)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, `inf_seconds_bucket{le="1"} 0`) ||
		!strings.Contains(text, `inf_seconds_bucket{le="+Inf"} 1`) {
		t.Fatalf("overflow exposition wrong:\n%s", text)
	}
}

// TestHistogramConcurrentObserveWhileRender hammers a histogram from
// writer goroutines while the registry renders, and checks every
// rendered snapshot is internally consistent: cumulative buckets must
// be monotone and the +Inf bucket must equal the count. Run under
// -race this also pins the exposition path against data races.
func TestHistogramConcurrentObserveWhileRender(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("churn_seconds", "concurrent", nil, []float64{0.1, 1, 10})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vals := []float64{0.05, 0.5, 5, 50}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(vals[(i+w)%len(vals)])
			}
		}(w)
	}
	for iter := 0; iter < 50; iter++ {
		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		var prev, infBucket, count float64
		haveInf, haveCount := false, false
		for _, line := range strings.Split(sb.String(), "\n") {
			switch {
			case strings.HasPrefix(line, "churn_seconds_bucket{"):
				v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
				if err != nil {
					t.Fatalf("bad bucket line %q: %v", line, err)
				}
				if v < prev {
					t.Fatalf("cumulative buckets not monotone:\n%s", sb.String())
				}
				prev = v
				if strings.Contains(line, `le="+Inf"`) {
					infBucket, haveInf = v, true
				}
			case strings.HasPrefix(line, "churn_seconds_count "):
				v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
				if err != nil {
					t.Fatalf("bad count line %q: %v", line, err)
				}
				count, haveCount = v, true
			}
		}
		if !haveInf || !haveCount {
			t.Fatalf("render missing histogram series:\n%s", sb.String())
		}
		// Observe bumps the bucket before the count and render reads
		// buckets before count, so the bucket total may lead the count
		// by at most one in-flight observation per writer — never more.
		if infBucket > count+4 {
			t.Fatalf("+Inf bucket %v leads count %v by more than the writer count", infBucket, count)
		}
	}
	close(stop)
	wg.Wait()
}

func TestWithLE(t *testing.T) {
	if got := withLE("", "0.5"); got != `{le="0.5"}` {
		t.Errorf("withLE bare = %s", got)
	}
	if got := withLE(`{a="b"}`, "+Inf"); got != `{a="b",le="+Inf"}` {
		t.Errorf("withLE merged = %s", got)
	}
}
