package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"doconsider/internal/arena"
	"doconsider/internal/obs"
	"doconsider/internal/sparse"
	"doconsider/internal/trisolve"
)

// The binary wire path. POST /v1/trisolve with Content-Type
// application/x-doconsider-frame (see frame.go for the format) decodes
// by slicing the request frame, solves through the coalescer's
// zero-alloc prepared-submit path, and encodes the response into arena
// memory the solver already wrote the solutions into. A warm
// fp-resubmission request — the shape this server is built around —
// performs zero heap allocations from frame bytes to response bytes
// (the gated BenchmarkBinaryRequest/fp-warm pins this; the HTTP
// transport around it allocates per request as net/http always does).

// reqState is the pooled per-request state of the binary path: the
// request arena plus reusable decode scratch. sync.Pool recycles the
// struct; the arena pool recycles the memory.
type reqState struct {
	arena *arena.Arena
	req   wireRequest
	sects []frameSection
	creq  coReq
	// Trace state rides in the pooled struct so stamping and level
	// sampling add no per-request allocations on the warm path.
	tr     obs.Trace
	lc     obs.LevelClock
	bstats trisolve.BuildStats
	// Tenant attribution: set from the header by the HTTP handler,
	// overridden by the frame's tenant section once decoded; direct
	// SolveFrame callers get the default tenant. Pointer reads and
	// counter increments only — no allocation on the warm path.
	tenant *tenantState
	class  Class
	// leaked marks state an abandoned pass may still reference (the
	// handler gave up on a cancelled submit while the pass kept its
	// *coReq); such state must be surrendered to the GC, not recycled.
	leaked bool
}

// getReqState pairs pooled scratch with a fresh request arena.
func (s *Server) getReqState() *reqState {
	st := s.reqPool.Get().(*reqState)
	st.arena = s.arenas.Get()
	return st
}

// putReqState releases the handler's arena reference and recycles the
// scratch. A detached pass may still hold its own arena reference; the
// arena returns to the pool when the last reference drops.
func (s *Server) putReqState(st *reqState) {
	st.arena.Release()
	st.arena = nil
	if st.leaked {
		// A detached pass may still write st.creq, st.bstats and st.lc;
		// recycling the struct would hand those writes to an unrelated
		// request. Cancellation is rare — let the GC collect it once the
		// pass drops its pointer.
		return
	}
	st.req.reset()
	st.creq = coReq{}
	st.tr = obs.Trace{}
	st.bstats = trisolve.BuildStats{}
	st.tenant = nil
	st.class = ClassBatch
	s.reqPool.Put(st)
}

// isFrameRequest reports whether the request selected the binary
// protocol. Parameters after the media type are tolerated.
func isFrameRequest(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if ct == FrameContentType {
		return true
	}
	return len(ct) > len(FrameContentType) && ct[:len(FrameContentType)] == FrameContentType &&
		(ct[len(FrameContentType)] == ';' || ct[len(FrameContentType)] == ' ')
}

// handleTrisolveBinary serves one binary-frame request. Admission
// control already ran in handleTrisolve; t0 is that handler's entry
// time, so the trace's admission stage covers the shared front door.
// ten/class are the header-resolved identity admission used; the
// frame's tenant section, when present, overrides them for
// attribution.
func (s *Server) handleTrisolveBinary(w http.ResponseWriter, r *http.Request, t0 time.Time,
	ten *tenantState, class Class) {
	st := s.getReqState()
	defer s.putReqState(st)
	st.tenant = ten
	st.class = class
	st.tr.Begin(obs.WireBinary, t0)
	st.tr.Lap(obs.StageAdmission)
	body, err := readFrameBody(r, st.arena)
	if err != nil {
		writeFrame(w, http.StatusBadRequest, encodeErrorFrame(http.StatusBadRequest, "bad frame body: "+err.Error(), 0))
		return
	}
	st.tr.Lap(obs.StageDecode)
	// The transport owns the default deadline; a timeout section can only
	// tighten it (unlike JSON's timeout_ms, which replaces the default —
	// the README documents the difference).
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.DefaultTimeout)
	defer cancel()
	frame, status := s.SolveFrame(ctx, body, st)
	writeFrame(w, status, frame)
}

// writeFrame emits a response frame.
func writeFrame(w http.ResponseWriter, status int, frame []byte) {
	w.Header().Set("Content-Type", FrameContentType)
	w.WriteHeader(status)
	_, _ = w.Write(frame)
}

// readFrameBody reads the request body into arena memory: one
// ReadFull into an exact-size buffer when Content-Length is declared,
// a geometric-growth loop otherwise. Both are bounded by
// MaxFrameBytes, mirroring the JSON path's MaxBytesReader.
func readFrameBody(r *http.Request, a *arena.Arena) ([]byte, error) {
	if r.ContentLength > MaxFrameBytes {
		return nil, fmt.Errorf("frame has %d bytes, limit %d", r.ContentLength, MaxFrameBytes)
	}
	if r.ContentLength >= 0 {
		buf := a.Bytes(int(r.ContentLength))
		if _, err := io.ReadFull(r.Body, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	buf := a.Bytes(64 << 10)
	total := 0
	for {
		if total == len(buf) {
			next := a.Bytes(2 * len(buf))
			copy(next, buf[:total])
			buf = next
		}
		n, err := r.Body.Read(buf[total:])
		total += n
		if total > MaxFrameBytes {
			return nil, fmt.Errorf("frame exceeds %d bytes", MaxFrameBytes)
		}
		if err == io.EOF {
			return buf[:total], nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// SolveFrame executes one binary request frame end to end — decode,
// factor resolution, solve, response encode — and returns the response
// frame with its HTTP status. The response bytes live in st's arena
// (valid until putReqState) on success, on the heap for error frames.
// ctx carries the transport deadline; a timeout section tightens it.
// This is the boundary the 0 allocs/op gate measures: on a warm
// fp-resubmission (factor hot, arena pooled, solver memoized, no
// timeout section) the call performs no heap allocations — including
// trace publication, which this wrapper performs so the gate covers it.
func (s *Server) SolveFrame(ctx context.Context, in []byte, st *reqState) ([]byte, int) {
	if !st.tr.Active() {
		// Direct callers (tests, benchmarks) skip handleTrisolveBinary;
		// their traces start here.
		st.tr.Begin(obs.WireBinary, time.Now())
	}
	if st.tenant == nil {
		st.tenant = s.tenants.def
	}
	frame, status := s.solveFrame(ctx, in, st)
	s.tracer.publish(&st.tr, obs.StageEncode, status)
	// Tenant accounting is inside the 0 allocs/op boundary: a counter
	// increment and a histogram observe, both lock-free.
	st.tenant.observe(st.class, st.tr.TotalNs)
	return frame, status
}

func (s *Server) solveFrame(ctx context.Context, in []byte, st *reqState) ([]byte, int) {
	q := &st.req
	if err := parseRequestFrame(in, st.arena, q, st.sects); err != nil {
		return errorFrame(http.StatusBadRequest, "bad frame: "+err.Error(), st.tr.ID)
	}
	st.tr.ID = q.traceID
	if !q.hasTrace || q.traceID == 0 {
		st.tr.ID = s.tracer.nextID()
	}
	if q.hasTenant {
		// The frame names its tenant: authoritative for attribution (the
		// header the handler resolved drove admission, which is already
		// done). A known tenant resolves with no allocation.
		st.tenant = s.tenants.resolveBytes(q.tenant)
		st.class = q.class
	}
	st.tr.SetTenant(st.tenant.name, byte(st.class))
	st.tr.Lap(obs.StageDecode)
	l, fp, hint, err := s.resolveFrameFactor(q, st.arena)
	if err != nil {
		if errors.Is(err, errUnknownFactor) {
			return errorFrame(http.StatusNotFound, err.Error(), st.tr.ID)
		}
		return errorFrame(http.StatusBadRequest, err.Error(), st.tr.ID)
	}
	st.tr.Lap(obs.StageFactor)
	if q.k == 0 {
		return errorFrame(http.StatusBadRequest, "request has no right-hand sides", st.tr.ID)
	}
	rowLen := len(q.rhsFlat) / q.k
	bs := st.arena.Rows(q.k)
	for j := 0; j < q.k; j++ {
		bs[j] = q.rhsFlat[j*rowLen : (j+1)*rowLen : (j+1)*rowLen]
	}
	if err := validateRHS(bs, l.N, s.cfg.MaxBatch); err != nil {
		return errorFrame(http.StatusBadRequest, err.Error(), st.tr.ID)
	}
	st.tr.Lap(obs.StageDecode)
	if q.timeoutMs < 0 {
		// Mirror the JSON path: a negative timeout is rejected, not
		// silently ignored (the count field decodes as signed int32).
		return errorFrame(http.StatusBadRequest,
			fmt.Sprintf("timeout must not be negative, got %dms", q.timeoutMs), st.tr.ID)
	}
	if q.timeoutMs > 0 {
		const maxTimeoutMs = 24 * 60 * 60 * 1000
		ms := q.timeoutMs
		if ms > maxTimeoutMs {
			ms = maxTimeoutMs
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
		defer cancel()
	}

	frame, lo, xs := newResponseFrame(st.arena, q.k, l.N)
	st.tr.Lap(obs.StageEncode)
	creq := &st.creq
	*creq = coReq{l: l, lower: q.lower, xs: xs, bs: bs, hint: hint, class: st.class}
	st.bstats = trisolve.BuildStats{}
	creq.bstats = &st.bstats
	if s.tracer.sampler.Sample() {
		// Level sampling: the pooled clock is installed for this request
		// only; the timed executor body is memoized per solver, so even a
		// sample-every-request configuration allocates nothing warm.
		st.lc.Reset()
		creq.lc = &st.lc
	}
	// The pass writes solutions straight into the response frame; give
	// it its own arena reference in case it outlives this handler.
	st.arena.Retain()
	creq.held = st.arena
	info, err := s.co.SubmitInto(ctx, creq)
	if err != nil {
		// The pass behind an abandoned submit may still be running with
		// our *coReq: don't read the shared observability fields, and
		// mark the pooled state so it is leaked rather than recycled.
		st.leaked = true
		st.tr.AttributeSubmit(0, 0, 0)
		code, msg := solveErrorStatus(err)
		return errorFrame(code, msg, st.tr.ID)
	}
	st.tr.AttributeSubmit(info.PlanNs, st.bstats.RepairNs, info.ExecNs)
	st.tr.SetInfo(l.N, q.k, info.Fused, info.Width, info.Strategy)
	if creq.lc != nil {
		st.lc.FillTrace(&st.tr)
	}
	return finishResponseFrame(frame, lo, xs, fp, info, st.tr.ID), http.StatusOK
}

func errorFrame(status int, msg string, tid uint64) ([]byte, int) {
	return encodeErrorFrame(status, msg, tid), status
}

// resolveFrameFactor is resolveFactor for decoded frames. The warm fp
// path goes through the hot-factor table and allocates nothing; inline
// and drift forms are cold paths sharing the JSON machinery's
// validation and registration helpers.
func (s *Server) resolveFrameFactor(q *wireRequest, a *arena.Arena) (*sparse.CSR, uint64, *driftHint, error) {
	forms := 0
	if q.hasFp {
		forms++
	}
	if q.hasBaseFp {
		forms++
	}
	inline := q.n != 0 || q.rowPtr != nil || q.colIdx != nil || q.val != nil
	if inline {
		forms++
	}
	if forms > 1 {
		return nil, 0, nil, errors.New("request carries more than one of: a factor, fp, base_fp; send one")
	}
	if len(q.edits) > 0 && !q.hasBaseFp {
		return nil, 0, nil, errors.New("edits require base_fp")
	}
	switch {
	case q.hasFp:
		l, err := s.frameFactorByFp(q.fp, q.lower)
		return l, q.fp, nil, err
	case q.hasBaseFp:
		return s.resolveFrameDrifted(q)
	case !inline:
		return nil, 0, nil, errors.New("request carries no factor (inline matrix, fp or base_fp)")
	}
	// Inline factor: validate on the zero-copy views, then clone out of
	// the frame memory before registering — the cache outlives the
	// request arena.
	wire := sparse.View(q.n, q.rowPtr, q.colIdx, q.val)
	if err := validateFactor(wire, q.lower); err != nil {
		return nil, 0, nil, err
	}
	l, fp, release := s.registerFactor(wire.Clone(), q.lower)
	release() // factors need no pin: eviction is a no-op Close, see below
	s.hotInsert(fp, q.lower, l)
	return l, fp, nil, nil
}

// frameFactorByFp resolves a resubmitted fingerprint: hot table first
// (no allocation), factor cache second. No pin is taken — a
// cachedFactor's Close is a no-op and the returned *CSR keeps the
// values alive through the solve, so eviction during the solve is
// harmless. The hot table may briefly serve a factor the cache has
// evicted; that is the same answer a request a moment earlier would
// have gotten, for a factor identified by its content.
func (s *Server) frameFactorByFp(fp uint64, lower bool) (*sparse.CSR, error) {
	if l := s.hotLookup(fp, lower); l != nil {
		// The ring serves what the cache would have: count the hit so
		// factor-cache telemetry stays truthful for binary traffic.
		s.factors.NoteHit()
		return l, nil
	}
	h, err := s.factors.Get(fp, func() (cachedFactor, error) {
		return cachedFactor{}, errUnknownFactor
	})
	if err != nil {
		return nil, err
	}
	cf := h.Value()
	_ = h.Release()
	if cf.lower != lower {
		return nil, fmt.Errorf("factor %016x was registered for lower=%v", fp, cf.lower)
	}
	s.hotInsert(fp, lower, cf.l)
	return cf.l, nil
}

// resolveFrameDrifted is resolveDrifted for decoded frames.
func (s *Server) resolveFrameDrifted(q *wireRequest) (*sparse.CSR, uint64, *driftHint, error) {
	if len(q.edits) == 0 {
		return nil, 0, nil, errors.New("base_fp requires edits (use fp to resubmit unchanged)")
	}
	base, err := s.frameFactorByFp(q.baseFp, q.lower)
	if err != nil {
		return nil, 0, nil, err
	}
	l, err := base.ApplyRowEdits(q.edits)
	if err != nil {
		return nil, 0, nil, err
	}
	rows := make([]int32, 0, len(q.edits))
	for _, e := range q.edits {
		rows = append(rows, e.Row)
	}
	if err := validateFactorRows(l, rows, q.lower); err != nil {
		return nil, 0, nil, err
	}
	hint := &driftHint{baseStructFp: base.StructureFingerprint(), rows: rows}
	l, fp, release := s.registerFactor(l, q.lower)
	release()
	s.hotInsert(fp, q.lower, l)
	return l, fp, hint, nil
}

// The hot-factor table is a short ring scanned under a mutex, sized by
// Config.HotFactorCap (default 8) for the working set of a warm serving
// mix.
type hotFactor struct {
	fp    uint64
	lower bool
	l     *sparse.CSR
}

// hotLookup scans the hot-factor ring. Zero allocations.
func (s *Server) hotLookup(fp uint64, lower bool) *sparse.CSR {
	s.hotMu.Lock()
	defer s.hotMu.Unlock()
	for i := range s.hot {
		if s.hot[i].fp == fp && s.hot[i].lower == lower && s.hot[i].l != nil {
			return s.hot[i].l
		}
	}
	return nil
}

// hotInsert records a resolved factor, overwriting the oldest slot. A
// fingerprint collision (fp 0 from registerFactor) is never cached.
func (s *Server) hotInsert(fp uint64, lower bool, l *sparse.CSR) {
	if fp == 0 || len(s.hot) == 0 {
		return
	}
	s.hotMu.Lock()
	defer s.hotMu.Unlock()
	for i := range s.hot {
		if s.hot[i].fp == fp && s.hot[i].lower == lower {
			s.hot[i].l = l
			return
		}
	}
	s.hot[s.hotNext] = hotFactor{fp: fp, lower: lower, l: l}
	s.hotNext = (s.hotNext + 1) % len(s.hot)
}
