package server

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"doconsider/internal/fphash"
	"doconsider/internal/sparse"
)

// RouteKey extracts the shard-routing fingerprint from a /v1/trisolve
// request body without executing it, so a stateless front door
// (internal/router) can consistent-hash requests across replicas. It
// lives in this package because it shares the wire formats' innards:
// the DCWF section table on the binary side, SolveRequest on the JSON
// side.
//
// The key is always a content fingerprint in the server's own hash:
//
//   - an fp resubmission routes by that fingerprint (RouteFp);
//   - a base_fp+edits drift request routes by the base fingerprint
//     (RouteDrift), which is what keeps a drift chain on the replica
//     holding its ancestor's plan;
//   - an inline factor routes by the content fingerprint the replica
//     itself will compute and return (RouteInline), so later by-fp
//     resubmissions of the same factor land on the same shard.
//
// For binary frames the inline fingerprint is computed straight off the
// little-endian section payloads — no decode, no allocation beyond the
// pooled section table.

// RouteKind classifies how a request named its factor.
type RouteKind uint8

const (
	RouteFp     RouteKind = iota // by-fingerprint resubmission
	RouteDrift                   // base_fp (+ edits) drift request
	RouteInline                  // full inline factor
)

func (k RouteKind) String() string {
	switch k {
	case RouteFp:
		return "fp"
	case RouteDrift:
		return "drift"
	case RouteInline:
		return "inline"
	}
	return fmt.Sprintf("RouteKind(%d)", uint8(k))
}

var errNoRouteKey = errors.New("request names no factor (inline matrix, fp or base_fp)")

// routeScratch pools the binary path's section-table scratch so RouteKey
// stays allocation-free on warm frames.
var routeScratch = sync.Pool{
	New: func() any {
		s := make([]frameSection, 0, maxFrameSections)
		return &s
	},
}

// RouteKey returns the routing fingerprint for a solve request body.
// binaryWire selects the DCWF frame decoder (Content-Type
// FrameContentType); otherwise the body is JSON. Malformed bodies
// return an error — the front door rejects them without burning a
// backend round trip.
func RouteKey(body []byte, binaryWire bool) (uint64, RouteKind, error) {
	if binaryWire {
		return routeKeyFrame(body)
	}
	return routeKeyJSON(body)
}

func routeKeyFrame(body []byte) (uint64, RouteKind, error) {
	if len(body) > MaxFrameBytes {
		return 0, 0, fmt.Errorf("frame has %d bytes, limit %d", len(body), MaxFrameBytes)
	}
	scratch := routeScratch.Get().(*[]frameSection)
	defer routeScratch.Put(scratch)
	_, sects, err := parseSections(body, *scratch)
	if err != nil {
		return 0, 0, err
	}
	var dimN uint64
	var rowPtr, colIdx, val []byte
	for _, s := range sects {
		payload := body[s.off : uint64(s.off)+uint64(s.length)]
		switch s.typ {
		case secFp, secBaseFp:
			if len(payload) != 8 {
				return 0, 0, fmt.Errorf("fingerprint section has %d bytes, want 8", len(payload))
			}
			fp := binary.LittleEndian.Uint64(payload)
			if s.typ == secFp {
				return fp, RouteFp, nil
			}
			return fp, RouteDrift, nil
		case secDim:
			dimN = uint64(s.count)
		case secRowPtr:
			rowPtr = payload
		case secColIdx:
			colIdx = payload
		case secVal:
			val = payload
		}
	}
	if dimN == 0 || rowPtr == nil {
		return 0, 0, errNoRouteKey
	}
	return contentFpFromPayloads(dimN, rowPtr, colIdx, val), RouteInline, nil
}

// contentFpFromPayloads replicates sparse.CSR.ContentFingerprint over
// raw little-endian section payloads: fphash.Words packs int32 pairs
// into one 64-bit mix, which for a little-endian byte payload is
// exactly one 8-byte read, so no []int32 or []float64 is materialized.
func contentFpFromPayloads(n uint64, rowPtr, colIdx, val []byte) uint64 {
	h := uint64(fphash.Offset)
	h = fphash.Mix(h, n)
	h = fphash.Mix(h, n) // M == N: the wire carries square factors
	h = mixWordBytes(h, rowPtr)
	h = mixWordBytes(h, colIdx)
	sfp := fphash.Final(h)
	if sfp == 0 {
		sfp = 1 // StructureFingerprint's not-yet-computed sentinel
	}
	h = sfp
	h = fphash.Mix(h, uint64(len(val)/8))
	for i := 0; i+8 <= len(val); i += 8 {
		h = fphash.Mix(h, binary.LittleEndian.Uint64(val[i:]))
	}
	return fphash.Final(h)
}

// mixWordBytes is fphash.Words over a packed little-endian int32
// payload: length prefix, int32 pairs as single 64-bit words, and a
// zero-extended odd tail.
func mixWordBytes(h uint64, payload []byte) uint64 {
	n := len(payload) / 4
	h = fphash.Mix(h, uint64(n))
	i := 0
	for ; i+1 < n; i += 2 {
		h = fphash.Mix(h, binary.LittleEndian.Uint64(payload[4*i:]))
	}
	if i < n {
		h = fphash.Mix(h, uint64(binary.LittleEndian.Uint32(payload[4*i:])))
	}
	return h
}

// ResponseFp extracts the content fingerprint a 200 solve response
// carries, so the front door can pin drift-repaired fingerprints to the
// shard that built them (the new fingerprint would otherwise hash to an
// arbitrary ring position, scattering the drift chain). Returns false
// for responses without a fingerprint or that do not parse.
func ResponseFp(body []byte, binaryWire bool) (uint64, bool) {
	if binaryWire {
		if len(body) > MaxFrameBytes {
			return 0, false
		}
		scratch := routeScratch.Get().(*[]frameSection)
		defer routeScratch.Put(scratch)
		_, sects, err := parseSections(body, *scratch)
		if err != nil {
			return 0, false
		}
		for _, s := range sects {
			if s.typ == secRespFp && s.length == 8 {
				return binary.LittleEndian.Uint64(body[s.off:]), true
			}
		}
		return 0, false
	}
	var r struct {
		Fp string `json:"fp"`
	}
	if json.Unmarshal(body, &r) != nil || r.Fp == "" {
		return 0, false
	}
	fp, err := parseHexFp(r.Fp)
	if err != nil {
		return 0, false
	}
	return fp, true
}

func routeKeyJSON(body []byte) (uint64, RouteKind, error) {
	var req SolveRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return 0, 0, fmt.Errorf("bad request body: %w", err)
	}
	switch {
	case req.Fp != "":
		fp, err := parseHexFp(req.Fp)
		if err != nil {
			return 0, 0, err
		}
		return fp, RouteFp, nil
	case req.BaseFp != "":
		fp, err := parseHexFp(req.BaseFp)
		if err != nil {
			return 0, 0, err
		}
		return fp, RouteDrift, nil
	case req.N > 0 && req.RowPtr != nil:
		l := sparse.View(req.N, req.RowPtr, req.ColIdx, req.Val)
		return l.ContentFingerprint(), RouteInline, nil
	}
	return 0, 0, errNoRouteKey
}
