package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"testing"

	"doconsider/internal/sparse"
	"doconsider/internal/synthetic"
	"doconsider/internal/trisolve"
)

// driftFactor builds a random lower factor large enough that plan repair
// beats rebuild in the planner's pricing.
func driftFactor(rng *rand.Rand, n int) *sparse.CSR {
	var ts []sparse.Triplet
	for i := 0; i < n; i++ {
		ts = append(ts, sparse.Triplet{Row: i, Col: i, Val: 2 + rng.Float64()})
		for j := 0; j < rng.Intn(4) && i > 0; j++ {
			ts = append(ts, sparse.Triplet{Row: i, Col: rng.Intn(i), Val: rng.NormFloat64()})
		}
	}
	return sparse.MustAssemble(n, n, ts)
}

// TestServerDriftRequest drives the base_fp+edits request form end to
// end: a full submission registers the base, a drift request ships only
// the edit set, and the reply must match solving the drifted factor
// shipped whole — with the plan cache recording a repair, not a rebuild.
func TestServerDriftRequest(t *testing.T) {
	s, ts := newTestServer(t, Config{Procs: 2})
	rng := rand.New(rand.NewSource(23))
	base := driftFactor(rng, 400)

	bs := [][]float64{randVec(base.N, 5)}
	resp, sr := postSolve(t, ts.URL, solveBody(t, base, true, bs))
	if resp.StatusCode != http.StatusOK || sr.Fp == "" {
		t.Fatalf("base submission: status %d fp %q", resp.StatusCode, sr.Fp)
	}

	edits := synthetic.DriftLower(rng, base, nil, 8, 0.3)
	if len(edits) == 0 {
		t.Fatal("no drift edits generated")
	}
	lower := true
	req := SolveRequest{BaseFp: sr.Fp, Edits: edits, Lower: &lower, B: bs}
	body, _ := json.Marshal(req)
	resp2, sr2 := postSolve(t, ts.URL, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("drift request: status %d", resp2.StatusCode)
	}
	if sr2.Fp == "" || sr2.Fp == sr.Fp {
		t.Fatalf("drift response fp %q (base %q): want a fresh registered fingerprint", sr2.Fp, sr.Fp)
	}
	if st := s.Stats(); st.Delta.Repairs != 1 {
		t.Fatalf("delta stats after drift: %+v, want 1 repair", st.Delta)
	}

	// The drifted solution matches solving the edited factor directly.
	edited, err := base.ApplyRowEdits(edits)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := trisolve.NewPlan(edited, true, trisolve.WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Close()
	want := make([]float64, edited.N)
	plan.Solve(want, bs[0])
	for i := range want {
		if sr2.X[0][i] != want[i] {
			t.Fatalf("x[%d] = %v, want %v (drift solve diverged)", i, sr2.X[0][i], want[i])
		}
	}

	// Resubmitting the drifted factor by its new fingerprint works.
	req3 := SolveRequest{Fp: sr2.Fp, Lower: &lower, B: bs}
	body3, _ := json.Marshal(req3)
	resp3, sr3 := postSolve(t, ts.URL, body3)
	if resp3.StatusCode != http.StatusOK || sr3.Fp != sr2.Fp {
		t.Fatalf("fp resubmission of drifted factor: status %d fp %q", resp3.StatusCode, sr3.Fp)
	}

	// /metrics exposes the repair counters.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`loops_plan_repair{event="repairs"} 1`)) {
		t.Fatalf("metrics missing repair counter:\n%s", buf.String())
	}
}

// TestServerDriftErrors pins the failure modes of the drift form.
func TestServerDriftErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Procs: 2})
	rng := rand.New(rand.NewSource(29))
	base := driftFactor(rng, 60)
	bs := [][]float64{randVec(base.N, 6)}
	resp, sr := postSolve(t, ts.URL, solveBody(t, base, true, bs))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("base submission: status %d", resp.StatusCode)
	}
	lower := true
	post := func(req SolveRequest) int {
		t.Helper()
		body, _ := json.Marshal(req)
		r, _ := postSolve(t, ts.URL, body)
		return r.StatusCode
	}
	if code := post(SolveRequest{BaseFp: "ffffffffffffffff",
		Edits: []sparse.RowEdit{{Row: 1, Delete: []int32{0}}}, Lower: &lower, B: bs}); code != http.StatusNotFound {
		t.Errorf("unknown base_fp: status %d, want 404", code)
	}
	if code := post(SolveRequest{BaseFp: sr.Fp, Lower: &lower, B: bs}); code != http.StatusBadRequest {
		t.Errorf("base_fp without edits: status %d, want 400", code)
	}
	if code := post(SolveRequest{BaseFp: sr.Fp, Fp: sr.Fp,
		Edits: []sparse.RowEdit{{Row: 1, Insert: []sparse.EditEntry{{Col: 0, Val: 1}}}},
		Lower: &lower, B: bs}); code != http.StatusBadRequest {
		t.Errorf("base_fp and fp together: status %d, want 400", code)
	}
	// An edit that inserts an upper entry breaks triangularity.
	if code := post(SolveRequest{BaseFp: sr.Fp,
		Edits: []sparse.RowEdit{{Row: 1, Insert: []sparse.EditEntry{{Col: 5, Val: 1}}}},
		Lower: &lower, B: bs}); code != http.StatusBadRequest {
		t.Errorf("upper-entry edit: status %d, want 400", code)
	}
	// Deleting the diagonal is rejected.
	if code := post(SolveRequest{BaseFp: sr.Fp,
		Edits: []sparse.RowEdit{{Row: 3, Delete: []int32{3}}},
		Lower: &lower, B: bs}); code != http.StatusBadRequest {
		t.Errorf("diagonal delete: status %d, want 400", code)
	}
	// A structurally bogus edit (delete of an absent column) is rejected.
	if code := post(SolveRequest{BaseFp: sr.Fp,
		Edits: []sparse.RowEdit{{Row: 2, Delete: []int32{1, 1}}},
		Lower: &lower, B: bs}); code != http.StatusBadRequest {
		t.Errorf("double delete: status %d, want 400", code)
	}
}
