package server

import (
	"context"
	"sync"
	"time"
)

// Weighted-fair admission. The pre-tenant server gated /v1/trisolve on
// a single in-flight counter: first MaxInFlight requests in, everyone
// else shed — so one flooding client could monopolize every slot. The
// admission controller replaces that semaphore with per-tenant deficit
// round-robin: each tenant gets a quantum of grants per rotation equal
// to its configured weight, latency-class waiters are drained before
// batch waiters, and per-tenant quotas cap how many slots one tenant
// can hold regardless of its weight.
//
// Requests that cannot be admitted immediately wait in a short
// per-tenant queue (Config.Admission.Queue per class) instead of being
// shed outright; the queue is what fairness is arbitrated over. When
// the queue is full — or queueing is disabled — the request is shed
// with a 429 whose Retry-After is derived from the observed drain rate
// and the depth of work ahead of the caller, not a hard-coded constant.

// admitResult classifies the outcome of an Admit call.
type admitResult uint8

const (
	admitOK admitResult = iota
	// admitShedCapacity: the server is saturated and the tenant's queue
	// is full (or queueing is disabled).
	admitShedCapacity
	// admitShedQuota: the tenant is at its own concurrency quota and
	// its queue is full (or queueing is disabled).
	admitShedQuota
	// admitDraining: the server began draining while the request
	// waited.
	admitDraining
	// admitCancelled: the request's context ended while it waited.
	admitCancelled
)

// waiter is one parked request in a tenant's admission queue.
type waiter struct {
	ready chan admitResult // buffered(1); exactly one outcome is sent
}

// admission is the weighted-fair admission controller.
type admission struct {
	capacity int    // global concurrent-solve cap (MaxInFlight)
	queueCap int    // per-tenant per-class queue cap; <=0 disables queueing
	gauge    *Gauge // loops_http_in_flight: admitted requests only
	queued   *Gauge // loops_admission_queued: parked waiters

	mu       sync.Mutex
	total    int // admitted requests across all tenants
	waiters  int // parked requests across all tenants
	draining bool

	// Deficit-round-robin ring. Tenants join on first enqueue and stay;
	// the ring is bounded by the tenant cardinality cap.
	ring   []*tenantState
	cursor int

	// Drain-rate estimate: EWMA of the interval between releases,
	// feeding Retry-After. Zero until the first pair of releases.
	lastRelease   time.Time
	drainNsPerReq float64
}

func newAdmission(cfg Config, reg *Registry) *admission {
	return &admission{
		capacity: cfg.Admission.MaxInFlight,
		queueCap: cfg.Admission.Queue,
		gauge:    reg.Gauge("loops_http_in_flight", "solve requests currently admitted", nil),
		queued:   reg.Gauge("loops_admission_queued", "solve requests parked in admission queues", nil),
	}
}

// inFlight returns the number of admitted (not queued) requests. The
// coalescer's quiescence seal counts these: a parked admission waiter
// is not "in flight" and must not hold a coalescing window open.
func (a *admission) inFlight() int64 { return a.gauge.Value() }

// queuedOf returns tenant t's current queue depth.
func (a *admission) queuedOf(t *tenantState) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return t.qlen
}

// Admit blocks until the request is granted a slot, shed, or
// cancelled. On a shed outcome it also returns the advisory
// Retry-After seconds. The caller must Release(t) after a granted
// request finishes.
func (a *admission) Admit(ctx context.Context, t *tenantState, class Class) (admitResult, int) {
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return admitDraining, 0
	}
	// Serve the queue first so a fresh arrival cannot jump tenants that
	// are already waiting; then an immediate grant is fair.
	a.grantLocked()
	if a.total < a.capacity && (t.quota <= 0 || t.inFlight < t.quota) && t.qlen == 0 {
		a.admitLocked(t)
		a.mu.Unlock()
		return admitOK, 0
	}
	shed := admitShedCapacity
	if t.quota > 0 && t.inFlight >= t.quota {
		shed = admitShedQuota
	}
	if a.queueCap <= 0 || len(t.queue[class]) >= a.queueCap {
		retry := a.retryAfterLocked(t)
		a.mu.Unlock()
		return shed, retry
	}
	w := &waiter{ready: make(chan admitResult, 1)}
	if !t.inRing {
		t.inRing = true
		t.deficit = t.weight
		a.ring = append(a.ring, t)
	}
	t.queue[class] = append(t.queue[class], w)
	t.qlen++
	a.waiters++
	a.queued.Set(int64(a.waiters))
	a.mu.Unlock()

	select {
	case res := <-w.ready:
		return res, 0
	case <-ctx.Done():
	}
	a.mu.Lock()
	// The grant may have raced the cancellation: a buffered send wins.
	select {
	case res := <-w.ready:
		a.mu.Unlock()
		return res, 0
	default:
	}
	a.removeWaiterLocked(t, w)
	a.mu.Unlock()
	return admitCancelled, 0
}

// Release returns tenant t's slot and wakes eligible waiters.
func (a *admission) Release(t *tenantState) {
	now := time.Now()
	a.mu.Lock()
	a.total--
	t.inFlight--
	if !a.lastRelease.IsZero() {
		iv := float64(now.Sub(a.lastRelease))
		if iv > float64(60*time.Second) {
			iv = float64(60 * time.Second)
		}
		if a.drainNsPerReq == 0 {
			a.drainNsPerReq = iv
		} else {
			a.drainNsPerReq = 0.8*a.drainNsPerReq + 0.2*iv
		}
	}
	a.lastRelease = now
	a.grantLocked()
	a.mu.Unlock()
	t.inFlightG.Add(-1)
	a.gauge.Add(-1)
}

// drain rejects all parked waiters and future arrivals; admitted
// requests run to completion.
func (a *admission) drain() {
	a.mu.Lock()
	a.draining = true
	for _, t := range a.ring {
		for c := range t.queue {
			for _, w := range t.queue[c] {
				w.ready <- admitDraining
			}
			t.queue[c] = nil
		}
		a.waiters -= t.qlen
		t.qlen = 0
	}
	a.queued.Set(int64(a.waiters))
	a.mu.Unlock()
}

func (a *admission) admitLocked(t *tenantState) {
	a.total++
	t.inFlight++
	t.inFlightG.Add(1)
	a.gauge.Add(1)
}

// grantLocked drains as many waiters as capacity allows, in weighted
// fair order.
func (a *admission) grantLocked() {
	for a.total < a.capacity {
		t, w := a.nextWaiterLocked()
		if w == nil {
			return
		}
		a.admitLocked(t)
		a.waiters--
		a.queued.Set(int64(a.waiters))
		w.ready <- admitOK
	}
}

// nextWaiterLocked picks the next waiter by deficit round-robin:
// a latency-only scan first so latency-class waiters are never stuck
// behind batch waiters of other tenants, then an any-class scan.
func (a *admission) nextWaiterLocked() (*tenantState, *waiter) {
	if t, w := a.scanLocked(true); w != nil {
		return t, w
	}
	return a.scanLocked(false)
}

// scanLocked walks the tenant ring from the cursor. A tenant with
// queued, servable work consumes one deficit per grant and keeps the
// cursor while its deficit lasts. If a full rotation finds servable
// tenants but all deficits are spent, deficits recharge (quantum =
// weight) and the scan retries once.
func (a *admission) scanLocked(latencyOnly bool) (*tenantState, *waiter) {
	if len(a.ring) == 0 {
		return nil, nil
	}
	for pass := 0; pass < 2; pass++ {
		blocked := false
		for i := 0; i < len(a.ring); i++ {
			idx := (a.cursor + i) % len(a.ring)
			t := a.ring[idx]
			if !a.servableLocked(t, latencyOnly) {
				continue
			}
			if t.deficit <= 0 {
				blocked = true
				continue
			}
			t.deficit--
			w := a.popLocked(t, latencyOnly)
			a.cursor = idx
			if t.deficit <= 0 || !a.servableLocked(t, latencyOnly) {
				a.cursor = (idx + 1) % len(a.ring)
			}
			return t, w
		}
		if !blocked {
			return nil, nil
		}
		for _, t := range a.ring {
			if a.servableLocked(t, latencyOnly) {
				t.deficit = t.weight
			}
		}
	}
	return nil, nil
}

// servableLocked reports whether t has a queued request that could be
// granted now (quota allowing).
func (a *admission) servableLocked(t *tenantState, latencyOnly bool) bool {
	if t.quota > 0 && t.inFlight >= t.quota {
		return false
	}
	if len(t.queue[ClassLatency]) > 0 {
		return true
	}
	return !latencyOnly && len(t.queue[ClassBatch]) > 0
}

// popLocked removes and returns t's next waiter, latency class first.
func (a *admission) popLocked(t *tenantState, latencyOnly bool) *waiter {
	c := ClassLatency
	if len(t.queue[c]) == 0 {
		if latencyOnly {
			return nil
		}
		c = ClassBatch
	}
	w := t.queue[c][0]
	t.queue[c] = t.queue[c][1:]
	t.qlen--
	return w
}

func (a *admission) removeWaiterLocked(t *tenantState, w *waiter) {
	for c := range t.queue {
		q := t.queue[c]
		for i := range q {
			if q[i] == w {
				t.queue[c] = append(q[:i:i], q[i+1:]...)
				t.qlen--
				a.waiters--
				a.queued.Set(int64(a.waiters))
				return
			}
		}
	}
}

// retryAfterLocked estimates how long the caller should wait before
// retrying: the work ahead of it (every admitted request plus every
// parked waiter plus itself) divided by the observed drain rate,
// clamped to [1s, 60s]. Before any drain signal exists it falls back
// to the old constant of 1 second.
func (a *admission) retryAfterLocked(t *tenantState) int {
	if a.drainNsPerReq <= 0 {
		return 1
	}
	ahead := a.total + a.waiters + 1
	secs := float64(ahead) * a.drainNsPerReq / 1e9
	s := int(secs)
	if float64(s) < secs {
		s++
	}
	if s < 1 {
		s = 1
	}
	if s > 60 {
		s = 60
	}
	return s
}
