package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"doconsider/internal/executor"
	"doconsider/internal/sparse"
	"doconsider/internal/stencil"
	"doconsider/internal/trisolve"
)

// testFactor returns a small lower-triangular factor with full diagonal.
func testFactor(m int) *sparse.CSR {
	return stencil.Laplace2D(m, m).LowerWithDiag()
}

// scaledFactor clones l with every value multiplied by f: same structure,
// different numbers — the cross-request recurrence the coalescer fuses.
func scaledFactor(l *sparse.CSR, f float64) *sparse.CSR {
	c := l.Clone()
	for k := range c.Val {
		c.Val[k] *= f
	}
	return c
}

func randVec(n int, seed int64) []float64 {
	v := make([]float64, n)
	s := uint64(seed)*2654435761 + 1
	for i := range v {
		s = s*6364136223846793005 + 1442695040888963407
		v[i] = float64(s%1000)/1000 + 0.001
	}
	return v
}

func newTestCoalescer(t *testing.T, window time.Duration, width int) *Coalescer {
	t.Helper()
	reg := NewRegistry()
	cache := trisolve.NewPlanCache(8)
	c := NewCoalescer(context.Background(), cache, reg, window, window, width, 2, executor.Pooled.String(), nil)
	t.Cleanup(func() {
		c.Drain()
		cache.Close()
	})
	return c
}

// refSolve returns the unfused Plan.Solve result for one factor/RHS pair;
// group passes must reproduce it bit for bit.
func refSolve(t *testing.T, l *sparse.CSR, b []float64) []float64 {
	t.Helper()
	plan, err := trisolve.NewPlan(l, true, trisolve.WithProcs(2), trisolve.WithKind(executor.Pooled))
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Close()
	x := make([]float64, l.N)
	plan.Solve(x, b)
	return x
}

func assertBitIdentical(t *testing.T, got, want []float64, what string) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: result differs at %d: %x vs %x", what, i, got[i], want[i])
		}
	}
}

// TestCoalesceWindowOfOne: a request that spends its whole window alone
// still solves correctly as a solo pass.
func TestCoalesceWindowOfOne(t *testing.T) {
	c := newTestCoalescer(t, 5*time.Millisecond, 64)
	l := testFactor(12)
	b := randVec(l.N, 1)
	xs, info, err := c.Submit(context.Background(), l, true, [][]float64{b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Fused != 1 || info.Width != 1 {
		t.Fatalf("solo window: info = %+v, want fused 1 width 1", info)
	}
	assertBitIdentical(t, xs[0], refSolve(t, l, b), "window of one")
	s := c.Stats()
	if s.Passes != 1 || s.Solo != 1 || s.Fused != 0 || s.Rate != 0 {
		t.Fatalf("stats = %+v, want one solo pass", s)
	}
}

// TestCoalesceFusesAtWidthCap: exactly cap-many concurrent requests fuse
// into one pass, and every member's solution is bit-identical to its
// unfused solve even though members carry different matrix values.
func TestCoalesceFusesAtWidthCap(t *testing.T) {
	const members = 6
	c := newTestCoalescer(t, 10*time.Second, members) // timer must never win
	base := testFactor(12)
	var wg sync.WaitGroup
	results := make([][][]float64, members)
	infos := make([]SolveInfo, members)
	errs := make([]error, members)
	ls := make([]*sparse.CSR, members)
	bs := make([][]float64, members)
	for i := 0; i < members; i++ {
		ls[i] = scaledFactor(base, 1+0.1*float64(i))
		bs[i] = randVec(base.N, int64(i))
	}
	for i := 0; i < members; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], infos[i], errs[i] = c.Submit(context.Background(), ls[i], true, [][]float64{bs[i]}, nil)
		}(i)
	}
	wg.Wait()
	for i := 0; i < members; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if infos[i].Fused != members || infos[i].Width != members {
			t.Fatalf("member %d: info = %+v, want fused %d", i, infos[i], members)
		}
		assertBitIdentical(t, results[i][0], refSolve(t, ls[i], bs[i]), "fused member")
	}
	s := c.Stats()
	if s.Passes != 1 || s.Fused != members || s.MaxFused != members {
		t.Fatalf("stats = %+v, want one fused pass of %d", s, members)
	}
	if s.Rate != 1 {
		t.Fatalf("coalescing rate = %v, want 1", s.Rate)
	}
}

// TestCoalesceWidthCapOverflowSplits: three requests of width 2 against a
// cap of 4 must split into two passes (2 requests fused, 1 solo) — the
// overflow seals the full window instead of growing it past the cap.
func TestCoalesceWidthCapOverflowSplits(t *testing.T) {
	c := newTestCoalescer(t, 10*time.Second, 4)
	l := testFactor(10)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bs := [][]float64{randVec(l.N, int64(2*i)), randVec(l.N, int64(2*i+1))}
			if _, _, err := c.Submit(context.Background(), l, true, bs, nil); err != nil {
				t.Error(err)
			}
		}(i)
	}
	// Two of the three fill the cap and seal; the third waits on its own
	// window, which only a flush (or the 10s timer) releases. Flush only
	// after the width-cap pass has finished and all three have submitted,
	// so a premature flush can never seal a singleton that was about to
	// pair up.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s := c.Stats()
		if s.Passes >= 2 {
			break
		}
		if s.Passes >= 1 && s.Requests == 3 {
			c.Flush()
		}
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	s := c.Stats()
	if s.Passes != 2 || s.Fused != 2 || s.Solo != 1 {
		t.Fatalf("stats = %+v, want cap overflow split into a fused pass of 2 and a solo pass", s)
	}
}

// TestCoalesceOversizedRequestRunsSolo: a request whose own batch meets
// the cap never waits in a window.
func TestCoalesceOversizedRequestRunsSolo(t *testing.T) {
	c := newTestCoalescer(t, 10*time.Second, 2)
	l := testFactor(8)
	bs := [][]float64{randVec(l.N, 1), randVec(l.N, 2), randVec(l.N, 3)}
	start := time.Now()
	_, info, err := c.Submit(context.Background(), l, true, bs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Fused != 1 || info.Width != 3 {
		t.Fatalf("info = %+v, want solo pass of width 3", info)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("oversized request waited out the window")
	}
}

// TestCoalesceCancellationReleasesOtherWaiters: cancelling one request
// mid-window withdraws it without wedging the group — the surviving
// waiter still completes when the window closes.
func TestCoalesceCancellationReleasesOtherWaiters(t *testing.T) {
	c := newTestCoalescer(t, 150*time.Millisecond, 64)
	l := testFactor(10)
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()

	var wg sync.WaitGroup
	var errA error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, errA = c.Submit(ctxA, l, true, [][]float64{randVec(l.N, 1)}, nil)
	}()
	// Give A a moment to join its window, bring B in, then cancel A.
	time.Sleep(10 * time.Millisecond)
	var xsB [][]float64
	var infoB SolveInfo
	var errB error
	bB := randVec(l.N, 2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		xsB, infoB, errB = c.Submit(context.Background(), l, true, [][]float64{bB}, nil)
	}()
	time.Sleep(10 * time.Millisecond)
	cancelA()
	wg.Wait()

	if !errors.Is(errA, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v, want context.Canceled", errA)
	}
	if errB != nil {
		t.Fatal(errB)
	}
	if infoB.Fused != 1 {
		t.Fatalf("survivor fused = %d, want 1 (the cancelled request left the pass)", infoB.Fused)
	}
	assertBitIdentical(t, xsB[0], refSolve(t, l, bB), "survivor after cancellation")
}

// TestCoalesceCancelledLoneWaiterDissolvesGroup: the cancelled request
// was the only member, so its group must be dissolved — no zero-member
// pass runs when the timer fires.
func TestCoalesceCancelledLoneWaiterDissolvesGroup(t *testing.T) {
	c := newTestCoalescer(t, 30*time.Millisecond, 64)
	l := testFactor(8)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Submit(ctx, l, true, [][]float64{randVec(l.N, 1)}, nil)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	time.Sleep(50 * time.Millisecond) // past the window timer
	if s := c.Stats(); s.Passes != 0 {
		t.Fatalf("stats = %+v, want no pass for a dissolved group", s)
	}
}

// TestCoalesceWindowZeroDisables: with the window off every request is a
// synchronous solo pass and the coalescing rate stays zero.
func TestCoalesceWindowZeroDisables(t *testing.T) {
	c := newTestCoalescer(t, 0, 64)
	l := testFactor(10)
	for i := 0; i < 4; i++ {
		b := randVec(l.N, int64(i))
		xs, info, err := c.Submit(context.Background(), l, true, [][]float64{b}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if info.Fused != 1 {
			t.Fatalf("request %d fused = %d with coalescing disabled", i, info.Fused)
		}
		assertBitIdentical(t, xs[0], refSolve(t, l, b), "disabled coalescing")
	}
	s := c.Stats()
	if s.Passes != 4 || s.Rate != 0 {
		t.Fatalf("stats = %+v, want four solo passes, rate 0", s)
	}
}

// TestCoalesceUpperSolve exercises the backward-solve key path.
func TestCoalesceUpperSolve(t *testing.T) {
	c := newTestCoalescer(t, 0, 64)
	u := testFactor(10).Transpose()
	b := randVec(u.N, 7)
	xs, _, err := c.Submit(context.Background(), u, false, [][]float64{b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := trisolve.NewPlan(u, false, trisolve.WithProcs(2), trisolve.WithKind(executor.Pooled))
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Close()
	want := make([]float64, u.N)
	plan.Solve(want, b)
	assertBitIdentical(t, xs[0], want, "upper solve")
}

// TestCoalesceQuiescentSeal: with an inflight hook installed, windows
// seal the moment every admitted request is parked — the timer (10s
// here) must never be what releases them.
func TestCoalesceQuiescentSeal(t *testing.T) {
	var inflight atomic.Int64
	reg := NewRegistry()
	cache := trisolve.NewPlanCache(8)
	defer cache.Close()
	c := NewCoalescer(context.Background(), cache, reg, 10*time.Second, 10*time.Second, 64, 2,
		executor.Pooled.String(), inflight.Load)
	defer c.Drain()
	l := testFactor(10)

	const members = 3
	inflight.Store(members)
	var wg sync.WaitGroup
	infos := make([]SolveInfo, members)
	start := time.Now()
	for i := 0; i < members; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var err error
			_, infos[i], err = c.Submit(context.Background(), l, true, [][]float64{randVec(l.N, int64(i))}, nil)
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("requests took %v — quiescent seal did not fire before the window timer", elapsed)
	}
	// All three were admitted and parked, so they seal together (the
	// last joiner trips quiescence; earlier partial seals would only
	// happen if a joiner arrived after a flush, impossible here since
	// parked < inflight until the last one).
	for i, info := range infos {
		if info.Fused != members {
			t.Fatalf("request %d fused = %d, want %d", i, info.Fused, members)
		}
	}
	if s := c.Stats(); s.Passes != 1 {
		t.Fatalf("stats = %+v, want one quiescence-sealed pass", s)
	}
}
