package ilu

import (
	"fmt"
	"sort"

	"doconsider/internal/executor"
	"doconsider/internal/schedule"
	"doconsider/internal/sparse"
	"doconsider/internal/wavefront"
)

// Factor holds an incomplete LU factorization. LU stores both factors in a
// single CSR matrix with the pattern of the symbolic factorization: in row
// i, columns j < i hold the multipliers of unit-lower-triangular L and
// columns j >= i hold U.
type Factor struct {
	Pat *Pattern
	LU  *sparse.CSR
}

// L returns the unit lower triangular factor as a standalone matrix with
// explicit unit diagonal, suitable for trisolve.
func (f *Factor) L() *sparse.CSR {
	n := f.LU.N
	t := sparse.New(n, n, f.LU.NNZ())
	for i := 0; i < n; i++ {
		cols, vals := f.LU.Row(i)
		for k, c := range cols {
			if int(c) < i {
				t.ColIdx = append(t.ColIdx, c)
				t.Val = append(t.Val, vals[k])
			}
		}
		t.ColIdx = append(t.ColIdx, int32(i))
		t.Val = append(t.Val, 1)
		t.RowPtr[i+1] = int32(len(t.ColIdx))
	}
	return t
}

// U returns the upper triangular factor (with diagonal) as a standalone
// matrix.
func (f *Factor) U() *sparse.CSR {
	n := f.LU.N
	t := sparse.New(n, n, f.LU.NNZ())
	for i := 0; i < n; i++ {
		cols, vals := f.LU.Row(i)
		for k, c := range cols {
			if int(c) >= i {
				t.ColIdx = append(t.ColIdx, c)
				t.Val = append(t.Val, vals[k])
			}
		}
		t.RowPtr[i+1] = int32(len(t.ColIdx))
	}
	return t
}

// scatter copies the values of a's row i into lu's (superset) pattern row.
func scatterRow(lu *sparse.CSR, a *sparse.CSR, i int) {
	cols, vals := lu.Row(i)
	for k := range vals {
		vals[k] = 0
	}
	acols, avals := a.Row(i)
	// Both rows sorted: merge.
	k := 0
	for q, c := range acols {
		for k < len(cols) && cols[k] < c {
			k++
		}
		if k < len(cols) && cols[k] == c {
			vals[k] += avals[q]
		}
		// Entries of a outside the pattern are dropped (cannot happen for
		// level >= 0 symbolic patterns, which contain a's pattern).
	}
}

// eliminateRow performs the incomplete elimination of row i in place,
// using already-stabilized pivot rows k < i (paper Figure 13 schematic).
// Positions are located by binary search within the sorted row, which makes
// the body safe for concurrent execution of independent rows.
func eliminateRow(lu *sparse.CSR, diagPos []int32, i int) {
	cols, vals := lu.Row(i)
	for k := 0; k < len(cols) && int(cols[k]) < i; k++ {
		piv := int(cols[k])
		pd := diagPos[piv]
		pivDiag := lu.Val[pd]
		if pivDiag == 0 {
			// Zero pivot: skip the update; the factor is flagged afterwards.
			continue
		}
		f := vals[k] / pivDiag
		vals[k] = f
		// Subtract f * (U part of pivot row) from row i, within pattern.
		pCols := lu.ColIdx[pd+1 : lu.RowPtr[piv+1]]
		pVals := lu.Val[pd+1 : lu.RowPtr[piv+1]]
		for q, j := range pCols {
			// Binary search for j among columns > piv of row i.
			lo, hi := k+1, len(cols)
			for lo < hi {
				mid := (lo + hi) / 2
				if cols[mid] < j {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo < len(cols) && cols[lo] == j {
				vals[lo] -= f * pVals[q]
			}
		}
	}
}

// diagPositions returns, for each row, the index into lu.Val of the
// diagonal entry.
func diagPositions(lu *sparse.CSR) ([]int32, error) {
	d := make([]int32, lu.N)
	for i := 0; i < lu.N; i++ {
		lo, hi := lu.RowPtr[i], lu.RowPtr[i+1]
		pos := int32(-1)
		for p := lo; p < hi; p++ {
			if int(lu.ColIdx[p]) == i {
				pos = p
				break
			}
		}
		if pos < 0 {
			return nil, fmt.Errorf("ilu: row %d has no diagonal in pattern", i)
		}
		d[i] = pos
	}
	return d, nil
}

// NumericSeq computes the numeric incomplete factorization of a on the
// given pattern sequentially.
func NumericSeq(a *sparse.CSR, pt *Pattern) (*Factor, error) {
	lu, diag, err := initLU(a, pt)
	if err != nil {
		return nil, err
	}
	for i := 0; i < a.N; i++ {
		eliminateRow(lu, diag, i)
	}
	f := &Factor{Pat: pt, LU: lu}
	return f, f.checkPivots()
}

// NumericParallel computes the numeric factorization using the requested
// executor over nproc processors. The outer loop dependence structure is
// read off the pattern's lower triangle: eliminating row i requires the
// stabilized pivot rows named by its L-part columns (Appendix II §2.2.2).
func NumericParallel(a *sparse.CSR, pt *Pattern, nproc int, kind executor.Kind, sched SchedulerChoice) (*Factor, executor.Metrics, error) {
	lu, diag, err := initLU(a, pt)
	if err != nil {
		return nil, executor.Metrics{}, err
	}
	deps := wavefront.FromLower(lu)
	wf, err := wavefront.Compute(deps)
	if err != nil {
		return nil, executor.Metrics{}, err
	}
	var s *schedule.Schedule
	switch sched {
	case GlobalSchedule:
		s = schedule.Global(wf, nproc)
	case LocalSchedule:
		s = schedule.Local(wf, nproc, schedule.Striped)
	default:
		return nil, executor.Metrics{}, fmt.Errorf("ilu: unknown schedule choice %d", sched)
	}
	body := func(i int32) { eliminateRow(lu, diag, int(i)) }
	m := executor.Run(kind, s, deps, body)
	f := &Factor{Pat: pt, LU: lu}
	return f, m, f.checkPivots()
}

// SchedulerChoice selects the index-set scheduling for NumericParallel.
type SchedulerChoice int

const (
	// GlobalSchedule deals wavefront-sorted indices wrapped across procs.
	GlobalSchedule SchedulerChoice = iota
	// LocalSchedule keeps a striped partition, locally wavefront-sorted.
	LocalSchedule
)

func initLU(a *sparse.CSR, pt *Pattern) (*sparse.CSR, []int32, error) {
	if a.N != pt.N {
		return nil, nil, fmt.Errorf("ilu: matrix order %d, pattern order %d", a.N, pt.N)
	}
	lu := &sparse.CSR{
		N:      pt.N,
		M:      pt.N,
		RowPtr: append([]int32(nil), pt.RowPtr...),
		ColIdx: append([]int32(nil), pt.ColIdx...),
		Val:    make([]float64, pt.NNZ()),
	}
	for i := 0; i < a.N; i++ {
		scatterRow(lu, a, i)
	}
	diag, err := diagPositions(lu)
	if err != nil {
		return nil, nil, err
	}
	return lu, diag, nil
}

// checkPivots verifies that every U diagonal is nonzero.
func (f *Factor) checkPivots() error {
	var bad []int
	for i := 0; i < f.LU.N; i++ {
		if f.LU.Val[f.Pat.DiagPos[i]] == 0 {
			bad = append(bad, i)
		}
	}
	if len(bad) > 0 {
		sort.Ints(bad)
		return fmt.Errorf("ilu: zero pivot at %d row(s), first %d", len(bad), bad[0])
	}
	return nil
}
