package ilu

import (
	"testing"

	"doconsider/internal/sparse"
	"doconsider/internal/stencil"
	"doconsider/internal/synthetic"
)

func patternsEqual(a, b *Pattern) bool {
	if a.N != b.N || a.NNZ() != b.NNZ() {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for k := range a.ColIdx {
		if a.ColIdx[k] != b.ColIdx[k] || a.Level[k] != b.Level[k] {
			return false
		}
	}
	for i := range a.DiagPos {
		if a.DiagPos[i] != b.DiagPos[i] {
			return false
		}
	}
	return true
}

func TestSymbolicParallelMatchesSequential(t *testing.T) {
	mats := map[string]*sparse.CSR{
		"laplace":   stencil.Laplace2D(11, 9),
		"fivepoint": stencil.FivePoint(10),
		"ninepoint": stencil.NinePoint(8),
		"spe-ish":   stencil.BlockSevenPoint(stencil.Grid3D{NX: 4, NY: 3, NZ: 3}, 2, 9),
		"synthetic": synthetic.Generate(synthetic.Config{Mesh: 12, Degree: 4, Distance: 2, Seed: 6}),
	}
	for name, a := range mats {
		for _, lvl := range []int{0, 1, 2} {
			want, err := Symbolic(a, lvl)
			if err != nil {
				t.Fatalf("%s lvl %d: %v", name, lvl, err)
			}
			for _, p := range []int{1, 2, 3, 8, 16} {
				got, err := SymbolicParallel(a, lvl, p)
				if err != nil {
					t.Fatalf("%s lvl %d p %d: %v", name, lvl, p, err)
				}
				if !patternsEqual(got, want) {
					t.Fatalf("%s lvl %d p %d: parallel symbolic differs", name, lvl, p)
				}
			}
		}
	}
}

func TestSymbolicParallelRejectsNonSquare(t *testing.T) {
	a := sparse.MustAssemble(2, 3, []sparse.Triplet{{Row: 0, Col: 0, Val: 1}})
	if _, err := SymbolicParallel(a, 0, 4); err == nil {
		t.Error("SymbolicParallel accepted non-square matrix")
	}
}

func TestSymbolicParallelThenNumeric(t *testing.T) {
	a := stencil.FivePoint(9)
	pat, err := SymbolicParallel(a, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Symbolic(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := NumericSeq(a, pat)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := NumericSeq(a, seq)
	if err != nil {
		t.Fatal(err)
	}
	for k := range f1.LU.Val {
		if f1.LU.Val[k] != f2.LU.Val[k] {
			t.Fatal("numeric factorization differs between symbolic paths")
		}
	}
}
