package ilu

import (
	"runtime"
	"testing"

	"doconsider/internal/executor"
	"doconsider/internal/stencil"
)

func BenchmarkSymbolicSequential(b *testing.B) {
	a := stencil.FivePoint(80)
	for i := 0; i < b.N; i++ {
		if _, err := Symbolic(a, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSymbolicParallel(b *testing.B) {
	a := stencil.FivePoint(80)
	procs := runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		if _, err := SymbolicParallel(a, 1, procs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNumeric(b *testing.B) {
	a := stencil.FivePoint(80)
	pat, err := Symbolic(a, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := NumericSeq(a, pat); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("selfexecuting", func(b *testing.B) {
		procs := runtime.GOMAXPROCS(0)
		for i := 0; i < b.N; i++ {
			if _, _, err := NumericParallel(a, pat, procs,
				executor.SelfExecuting, GlobalSchedule); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prescheduled", func(b *testing.B) {
		procs := runtime.GOMAXPROCS(0)
		for i := 0; i < b.N; i++ {
			if _, _, err := NumericParallel(a, pat, procs,
				executor.PreScheduled, GlobalSchedule); err != nil {
				b.Fatal(err)
			}
		}
	})
}
