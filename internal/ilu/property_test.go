package ilu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"doconsider/internal/sparse"
	"doconsider/internal/synthetic"
)

// patternContains reports whether every entry of inner appears in outer.
func patternContains(outer, inner *Pattern) bool {
	for i := 0; i < inner.N; i++ {
		oRow := outer.Row(i)
		set := make(map[int32]bool, len(oRow))
		for _, c := range oRow {
			set[c] = true
		}
		for _, c := range inner.Row(i) {
			if !set[c] {
				return false
			}
		}
	}
	return true
}

// TestFillMonotoneInLevel: ILU(k) pattern is contained in ILU(k+1) pattern.
func TestFillMonotoneInLevel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mesh := 6 + rng.Intn(8)
		a := synthetic.Generate(synthetic.Config{
			Mesh: mesh, Degree: 3, Distance: 2, Seed: seed,
		})
		// Symmetrize the structure a bit by adding the transpose pattern so
		// elimination generates upper fill too.
		at := a.Transpose()
		ts := []sparse.Triplet{}
		for i := 0; i < a.N; i++ {
			cols, vals := a.Row(i)
			for k, c := range cols {
				ts = append(ts, sparse.Triplet{Row: i, Col: int(c), Val: vals[k]})
			}
			tcols, tvals := at.Row(i)
			for k, c := range tcols {
				ts = append(ts, sparse.Triplet{Row: i, Col: int(c), Val: 0.5 * tvals[k]})
			}
		}
		full := sparse.MustAssemble(a.N, a.N, ts)
		prev, err := Symbolic(full, 0)
		if err != nil {
			return false
		}
		for lvl := 1; lvl <= 2; lvl++ {
			next, err := Symbolic(full, lvl)
			if err != nil {
				return false
			}
			if !patternContains(next, prev) {
				return false
			}
			prev = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestLevelsBoundedByMaxLevel: every retained entry's level is within the
// requested bound.
func TestLevelsBoundedByMaxLevel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mesh := 5 + rng.Intn(6)
		a := synthetic.Generate(synthetic.Config{
			Mesh: mesh, Degree: 4, Distance: 2, Seed: seed + 1,
		})
		lvl := rng.Intn(3)
		pat, err := Symbolic(a, lvl)
		if err != nil {
			return false
		}
		for _, l := range pat.Level {
			if int(l) > lvl {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
