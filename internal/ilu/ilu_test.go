package ilu

import (
	"math"
	"math/rand"
	"testing"

	"doconsider/internal/executor"
	"doconsider/internal/sparse"
	"doconsider/internal/stencil"
	"doconsider/internal/trisolve"
	"doconsider/internal/vec"
)

func TestSymbolicLevel0MatchesMatrixPattern(t *testing.T) {
	a := stencil.Laplace2D(6, 5)
	pat, err := Symbolic(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pat.NNZ() != a.NNZ() {
		t.Fatalf("ILU(0) pattern nnz %d != matrix nnz %d", pat.NNZ(), a.NNZ())
	}
	for i := 0; i < a.N; i++ {
		cols, _ := a.Row(i)
		prow := pat.Row(i)
		if len(cols) != len(prow) {
			t.Fatalf("row %d pattern size mismatch", i)
		}
		for k := range cols {
			if cols[k] != prow[k] {
				t.Fatalf("row %d column mismatch", i)
			}
		}
	}
	for _, l := range pat.Level {
		if l != 0 {
			t.Fatal("ILU(0) pattern has nonzero level entries")
		}
	}
}

func TestSymbolicLevelGrowth(t *testing.T) {
	a := stencil.Laplace2D(8, 8)
	nnzs := []int{}
	for lvl := 0; lvl <= 3; lvl++ {
		pat, err := Symbolic(a, lvl)
		if err != nil {
			t.Fatal(err)
		}
		nnzs = append(nnzs, pat.NNZ())
	}
	for k := 1; k < len(nnzs); k++ {
		if nnzs[k] < nnzs[k-1] {
			t.Fatalf("fill decreased with level: %v", nnzs)
		}
	}
	if nnzs[1] <= nnzs[0] {
		t.Error("ILU(1) should add fill over ILU(0) on a 5-point mesh")
	}
}

func TestSymbolicAddsDiagonal(t *testing.T) {
	// Matrix missing a diagonal entry: symbolic must add it.
	a := sparse.MustAssemble(2, 2, []sparse.Triplet{
		{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 0, Val: 1},
	})
	pat, err := Symbolic(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range pat.Row(1) {
		if c == 1 {
			found = true
		}
	}
	if !found {
		t.Error("diagonal not added to pattern")
	}
}

func TestSymbolicRejectsNonSquare(t *testing.T) {
	a := sparse.MustAssemble(2, 3, []sparse.Triplet{{Row: 0, Col: 0, Val: 1}})
	if _, err := Symbolic(a, 0); err == nil {
		t.Error("Symbolic accepted non-square matrix")
	}
}

// denseLU computes the exact dense LU factorization restricted to a
// pattern: the reference ILU definition.
func denseILU(a *sparse.CSR, pat *Pattern) ([][]float64, error) {
	n := a.N
	inPat := make([]map[int]bool, n)
	for i := 0; i < n; i++ {
		inPat[i] = map[int]bool{}
		for _, c := range pat.Row(i) {
			inPat[i][int(c)] = true
		}
	}
	lu := a.Dense()
	for i := 0; i < n; i++ {
		for k := 0; k < i; k++ {
			if !inPat[i][k] {
				continue
			}
			lu[i][k] /= lu[k][k]
			for j := k + 1; j < n; j++ {
				if inPat[i][j] && inPat[k][j] {
					lu[i][j] -= lu[i][k] * lu[k][j]
				}
			}
		}
	}
	return lu, nil
}

func TestNumericSeqMatchesDenseReference(t *testing.T) {
	for _, lvl := range []int{0, 1, 2} {
		a := stencil.Laplace2D(5, 4)
		pat, err := Symbolic(a, lvl)
		if err != nil {
			t.Fatal(err)
		}
		f, err := NumericSeq(a, pat)
		if err != nil {
			t.Fatal(err)
		}
		want, err := denseILU(a, pat)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < a.N; i++ {
			cols, vals := f.LU.Row(i)
			for k, c := range cols {
				if math.Abs(vals[k]-want[i][c]) > 1e-12 {
					t.Fatalf("level %d: LU(%d,%d) = %v, want %v", lvl, i, c, vals[k], want[i][c])
				}
			}
		}
	}
}

func TestILU0ExactOnTriangularInput(t *testing.T) {
	// For an already-lower-triangular matrix, ILU(0) is exact: L*U == A.
	rng := rand.New(rand.NewSource(1))
	ts := []sparse.Triplet{}
	n := 50
	for i := 0; i < n; i++ {
		ts = append(ts, sparse.Triplet{Row: i, Col: i, Val: 2 + rng.Float64()})
		if i > 0 {
			ts = append(ts, sparse.Triplet{Row: i, Col: rng.Intn(i), Val: rng.NormFloat64()})
		}
	}
	a := sparse.MustAssemble(n, n, ts)
	pat, err := Symbolic(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NumericSeq(a, pat)
	if err != nil {
		t.Fatal(err)
	}
	u := f.U()
	// U should equal the diagonal of A (no upper entries).
	for i := 0; i < n; i++ {
		cols, vals := u.Row(i)
		if len(cols) != 1 || int(cols[0]) != i {
			t.Fatalf("U row %d not diagonal-only", i)
		}
		if math.Abs(vals[0]-a.At(i, i)) > 1e-12 {
			t.Fatalf("U(%d,%d) wrong", i, i)
		}
	}
}

func TestLUFactorsSolvePreconditionerEquation(t *testing.T) {
	// For any r, applying forward+backward solves with the ILU factors must
	// satisfy L*(U*z) = r exactly (up to roundoff) for the factored system.
	a := stencil.FivePoint(10)
	pat, err := Symbolic(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NumericSeq(a, pat)
	if err != nil {
		t.Fatal(err)
	}
	l, u := f.L(), f.U()
	rng := rand.New(rand.NewSource(2))
	r := make([]float64, a.N)
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	tmp := make([]float64, a.N)
	z := make([]float64, a.N)
	if err := trisolve.ForwardSeq(l, tmp, r); err != nil {
		t.Fatal(err)
	}
	if err := trisolve.BackwardSeq(u, z, tmp); err != nil {
		t.Fatal(err)
	}
	// Check L*U*z == r.
	uz := make([]float64, a.N)
	if err := u.MatVec(uz, z); err != nil {
		t.Fatal(err)
	}
	luz := make([]float64, a.N)
	if err := l.MatVec(luz, uz); err != nil {
		t.Fatal(err)
	}
	if d := vec.MaxAbsDiff(luz, r); d > 1e-9 {
		t.Errorf("L*U*z vs r diff %v", d)
	}
}

func TestNumericParallelMatchesSequential(t *testing.T) {
	a := stencil.FivePoint(12)
	pat, err := Symbolic(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NumericSeq(a, pat)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []executor.Kind{executor.PreScheduled, executor.SelfExecuting} {
		for _, sched := range []SchedulerChoice{GlobalSchedule, LocalSchedule} {
			for _, p := range []int{1, 2, 4, 8} {
				got, _, err := NumericParallel(a, pat, p, kind, sched)
				if err != nil {
					t.Fatal(err)
				}
				if d := vec.MaxAbsDiff(got.LU.Val, want.LU.Val); d > 1e-12 {
					t.Errorf("kind=%v sched=%v p=%d: max diff %v", kind, sched, p, d)
				}
			}
		}
	}
}

func TestFactorSplitRoundTrip(t *testing.T) {
	a := stencil.Laplace2D(7, 7)
	pat, _ := Symbolic(a, 0)
	f, err := NumericSeq(a, pat)
	if err != nil {
		t.Fatal(err)
	}
	l, u := f.L(), f.U()
	if err := l.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	if err := u.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	// L unit diagonal.
	for i := 0; i < l.N; i++ {
		if l.At(i, i) != 1 {
			t.Fatalf("L(%d,%d) = %v, want 1", i, i, l.At(i, i))
		}
	}
	// nnz(L)+nnz(U) == nnz(pattern)+n (extra unit diagonal).
	if l.NNZ()+u.NNZ() != pat.NNZ()+a.N {
		t.Errorf("factor split sizes: %d + %d != %d + %d", l.NNZ(), u.NNZ(), pat.NNZ(), a.N)
	}
}

func TestPatternCSR(t *testing.T) {
	a := stencil.Laplace2D(4, 4)
	pat, _ := Symbolic(a, 0)
	pc := pat.PatternCSR()
	if err := pc.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	if pc.NNZ() != pat.NNZ() {
		t.Error("PatternCSR changed nnz")
	}
}

func TestZeroPivotDetected(t *testing.T) {
	// a22 becomes exactly zero after elimination: a = [[1 1],[1 1]].
	a := sparse.MustAssemble(2, 2, []sparse.Triplet{
		{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 1, Val: 1},
		{Row: 1, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1},
	})
	pat, err := Symbolic(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NumericSeq(a, pat); err == nil {
		t.Error("NumericSeq missed zero pivot")
	}
}
