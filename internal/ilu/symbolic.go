// Package ilu implements the incomplete LU factorization of the paper's
// Appendix II: a level-of-fill symbolic factorization that determines the
// sparsity structure of the factors (using sorted linked-list row merges),
// and a numeric factorization computed either sequentially or in parallel
// with the pre-scheduled / self-executing executors, exactly as PCGPAK's
// numeric factorization was parallelized.
package ilu

import (
	"fmt"

	"doconsider/internal/sparse"
)

// Pattern is the sparsity structure of the combined LU factor. Row i holds
// the retained columns in increasing order; DiagPos locates the diagonal
// within each row. Level records the fill level of each retained entry
// (original entries have level 0).
type Pattern struct {
	N       int
	RowPtr  []int32
	ColIdx  []int32
	Level   []int32
	DiagPos []int32
}

// Row returns the column indices of row i. The slice aliases the pattern.
func (pt *Pattern) Row(i int) []int32 { return pt.ColIdx[pt.RowPtr[i]:pt.RowPtr[i+1]] }

// NNZ returns the number of stored entries.
func (pt *Pattern) NNZ() int { return len(pt.ColIdx) }

// Symbolic computes the level-based incomplete fill pattern of a: an entry
// (i,j) created by eliminating with pivot row k gets level
// lev(i,k)+lev(k,j)+1, and only entries with level <= maxLevel are
// retained. maxLevel = 0 reproduces the zero-fill ILU(0) pattern (the
// pattern of a itself, provided a has a full diagonal).
//
// The row merge uses the classic sorted linked-list representation
// described in the paper's Appendix II §2.3: "The columns of row i ... are
// kept sorted in increasing order in a linked list. Operations on row i
// with pivot row j require that the list of non-zeros pertaining to row i
// be merged with the list of non-zeros pertaining to pivot row j."
func Symbolic(a *sparse.CSR, maxLevel int) (*Pattern, error) {
	if a.N != a.M {
		return nil, fmt.Errorf("ilu: matrix is %dx%d, want square", a.N, a.M)
	}
	n := a.N
	pt := &Pattern{
		N:       n,
		RowPtr:  make([]int32, n+1),
		DiagPos: make([]int32, n),
	}
	// Linked list over columns: next[c] = next column in the working row,
	// terminated by n; lev[c] = working level of column c.
	const unset = -1
	next := make([]int32, n+1)
	lev := make([]int32, n)
	for c := range next {
		next[c] = unset
	}
	// Final factored rows, needed when later rows merge with pivot row k.
	// uRow[k] lists columns > k of factored row k; uLev the matching levels.
	uRow := make([][]int32, n)
	uLev := make([][]int32, n)

	for i := 0; i < n; i++ {
		// Seed the working list with row i of a (level 0), plus the diagonal.
		head := int32(n)
		seed := func(c int32, l int32) {
			if next[c] != unset {
				if l < lev[c] {
					lev[c] = l
				}
				return
			}
			// Insert c into the sorted list.
			if head == int32(n) || c < head {
				next[c] = head
				head = c
			} else {
				p := head
				for next[p] != int32(n) && next[p] < c {
					p = next[p]
				}
				next[c] = next[p]
				next[p] = c
			}
			lev[c] = l
		}
		cols, _ := a.Row(i)
		for _, c := range cols {
			seed(c, 0)
		}
		seed(int32(i), 0) // ensure the diagonal exists

		// Eliminate with pivot rows in increasing column order.
		for k := head; k < int32(i); k = next[k] {
			fillBase := lev[k] + 1
			if int(fillBase) > maxLevel {
				continue // multiplier too indirect; generates no retained fill
			}
			ur := uRow[k]
			ul := uLev[k]
			for q, j := range ur {
				newLev := fillBase + ul[q]
				if int(newLev) <= maxLevel {
					seed(j, newLev)
				}
			}
		}

		// Harvest the working list into the pattern, resetting the list.
		rowStart := len(pt.ColIdx)
		diag := int32(-1)
		var uCols, uLevs []int32
		for c := head; c != int32(n); {
			if int(c) == i {
				diag = int32(len(pt.ColIdx))
			}
			if int(c) > i {
				uCols = append(uCols, c)
				uLevs = append(uLevs, lev[c])
			}
			pt.ColIdx = append(pt.ColIdx, c)
			pt.Level = append(pt.Level, lev[c])
			nc := next[c]
			next[c] = unset
			c = nc
		}
		if diag < 0 {
			return nil, fmt.Errorf("ilu: row %d lost its diagonal", i)
		}
		_ = rowStart
		pt.DiagPos[i] = diag
		pt.RowPtr[i+1] = int32(len(pt.ColIdx))
		uRow[i] = uCols
		uLev[i] = uLevs
	}
	return pt, nil
}

// PatternCSR returns the pattern as a CSR matrix with zero values, useful
// for structural comparisons in tests.
func (pt *Pattern) PatternCSR() *sparse.CSR {
	return &sparse.CSR{
		N:      pt.N,
		M:      pt.N,
		RowPtr: append([]int32(nil), pt.RowPtr...),
		ColIdx: append([]int32(nil), pt.ColIdx...),
		Val:    make([]float64, pt.NNZ()),
	}
}
