package ilu

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"doconsider/internal/sparse"
)

// SymbolicParallel computes the same level-based fill pattern as Symbolic
// using the paper's Appendix II §2.3 strategy for the symbolic
// factorization: "we distribute the rows of the matrix over processors in
// a wrapped manner and execute in a self-scheduled fashion."
//
// The dependence structure of the symbolic factorization is not known in
// advance (it is exactly what is being computed), so no inspector can run
// first; instead each worker processes its wrapped rows in increasing
// order and busy-waits on a shared done array before merging with a pivot
// row whose final structure another worker is still building. Progress is
// guaranteed because a row only ever waits on strictly smaller rows.
func SymbolicParallel(a *sparse.CSR, maxLevel, nproc int) (*Pattern, error) {
	if a.N != a.M {
		return nil, fmt.Errorf("ilu: matrix is %dx%d, want square", a.N, a.M)
	}
	n := a.N
	if nproc < 1 {
		nproc = 1
	}
	if nproc > n {
		nproc = n
	}
	// Published per-row results. uRow/uLev are written by a row's owner
	// before its done flag is set (release) and read by consumers after
	// observing the flag (acquire), so the accesses are ordered.
	rowCols := make([][]int32, n)
	rowLevs := make([][]int32, n)
	uRow := make([][]int32, n)
	uLev := make([][]int32, n)
	diagOff := make([]int32, n)
	done := make([]int32, n)
	errs := make([]error, nproc)

	var wg sync.WaitGroup
	for p := 0; p < nproc; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			const unset = -1
			next := make([]int32, n+1)
			lev := make([]int32, n)
			for c := range next {
				next[c] = unset
			}
			for i := p; i < n; i += nproc {
				head := int32(n)
				seed := func(c int32, l int32) {
					if next[c] != unset {
						if l < lev[c] {
							lev[c] = l
						}
						return
					}
					if head == int32(n) || c < head {
						next[c] = head
						head = c
					} else {
						q := head
						for next[q] != int32(n) && next[q] < c {
							q = next[q]
						}
						next[c] = next[q]
						next[q] = c
					}
					lev[c] = l
				}
				cols, _ := a.Row(i)
				for _, c := range cols {
					seed(c, 0)
				}
				seed(int32(i), 0)
				for k := head; k < int32(i); k = next[k] {
					fillBase := lev[k] + 1
					if int(fillBase) > maxLevel {
						continue
					}
					// Busy-wait for row k's final structure (self-scheduling).
					for atomic.LoadInt32(&done[k]) == 0 {
						runtime.Gosched()
					}
					ur := uRow[k]
					ul := uLev[k]
					for q, j := range ur {
						newLev := fillBase + ul[q]
						if int(newLev) <= maxLevel {
							seed(j, newLev)
						}
					}
				}
				// Harvest and publish.
				var cs, ls, uc, ul []int32
				diag := int32(-1)
				for c := head; c != int32(n); {
					if int(c) == i {
						diag = int32(len(cs))
					}
					if int(c) > i {
						uc = append(uc, c)
						ul = append(ul, lev[c])
					}
					cs = append(cs, c)
					ls = append(ls, lev[c])
					nc := next[c]
					next[c] = unset
					c = nc
				}
				if diag < 0 && errs[p] == nil {
					// Unreachable while seed() inserts the diagonal, but if it
					// ever fires we record the error and keep publishing rows
					// so no other worker can hang waiting on this stripe.
					errs[p] = fmt.Errorf("ilu: row %d lost its diagonal", i)
				}
				rowCols[i] = cs
				rowLevs[i] = ls
				uRow[i] = uc
				uLev[i] = ul
				diagOff[i] = diag
				atomic.StoreInt32(&done[i], 1)
			}
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Assemble the Pattern from the per-row results.
	pt := &Pattern{
		N:       n,
		RowPtr:  make([]int32, n+1),
		DiagPos: make([]int32, n),
	}
	total := 0
	for i := 0; i < n; i++ {
		total += len(rowCols[i])
	}
	pt.ColIdx = make([]int32, 0, total)
	pt.Level = make([]int32, 0, total)
	for i := 0; i < n; i++ {
		pt.DiagPos[i] = int32(len(pt.ColIdx)) + diagOff[i]
		pt.ColIdx = append(pt.ColIdx, rowCols[i]...)
		pt.Level = append(pt.Level, rowLevs[i]...)
		pt.RowPtr[i+1] = int32(len(pt.ColIdx))
	}
	return pt, nil
}
