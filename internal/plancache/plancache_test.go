package plancache

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// tracker is a cache value that records its Close calls; closing twice or
// using a closed value is the lifecycle bug the cache must prevent.
type tracker struct {
	id     int
	closes atomic.Int32
}

func (t *tracker) Close() error {
	t.closes.Add(1)
	return nil
}

func newTracker(id int) func() (*tracker, error) {
	return func() (*tracker, error) { return &tracker{id: id}, nil }
}

func TestGetHitMissStats(t *testing.T) {
	c := New[int, *tracker](0)
	defer c.Close()
	h1, err := c.Get(1, newTracker(1))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c.Get(1, func() (*tracker, error) {
		t.Fatal("builder ran on a resident key")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if h1.Value() != h2.Value() {
		t.Fatal("hit returned a different value")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Resident != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 resident", s)
	}
	if got := s.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}
	h1.Release()
	h2.Release()
}

func TestBuildErrorNotCached(t *testing.T) {
	c := New[int, *tracker](0)
	defer c.Close()
	boom := errors.New("boom")
	if _, err := c.Get(1, func() (*tracker, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if c.Len() != 0 {
		t.Fatalf("failed build left %d resident entries", c.Len())
	}
	// The key must be rebuildable after a failure.
	h, err := c.Get(1, newTracker(1))
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
}

func TestLRUEvictionClosesIdleEntries(t *testing.T) {
	c := New[int, *tracker](2)
	defer c.Close()
	var built []*tracker
	get := func(k int) *tracker {
		h, err := c.Get(k, func() (*tracker, error) {
			tr := &tracker{id: k}
			built = append(built, tr)
			return tr, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		v := h.Value()
		h.Release()
		return v
	}
	t1, t2 := get(1), get(2)
	get(1)       // touch 1: now 2 is least recently used
	t3 := get(3) // evicts 2
	if got := c.Stats().Evictions; got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if t2.closes.Load() != 1 {
		t.Fatalf("evicted idle entry closed %d times, want 1", t2.closes.Load())
	}
	if t1.closes.Load() != 0 || t3.closes.Load() != 0 {
		t.Fatal("resident entries were closed")
	}
}

func TestEvictionDefersCloseToLastRelease(t *testing.T) {
	c := New[int, *tracker](0)
	h1, err := c.Get(1, newTracker(1))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c.Get(1, newTracker(1))
	if err != nil {
		t.Fatal(err)
	}
	tr := h1.Value()
	if !c.Evict(1) {
		t.Fatal("Evict found nothing")
	}
	if tr.closes.Load() != 0 {
		t.Fatal("entry closed while handles outstanding")
	}
	h1.Release()
	if tr.closes.Load() != 0 {
		t.Fatal("entry closed before final release")
	}
	h2.Release()
	if tr.closes.Load() != 1 {
		t.Fatalf("entry closed %d times after final release, want 1", tr.closes.Load())
	}
	// Release is idempotent.
	h2.Release()
	if tr.closes.Load() != 1 {
		t.Fatal("double release closed the entry again")
	}
	c.Close()
}

func TestSingleflightCoalescesConcurrentMisses(t *testing.T) {
	c := New[int, *tracker](0)
	defer c.Close()
	var builds atomic.Int32
	gate := make(chan struct{})
	const callers = 16
	var wg sync.WaitGroup
	values := make([]*tracker, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := c.Get(7, func() (*tracker, error) {
				builds.Add(1)
				<-gate // hold the build open so every caller piles up
				return &tracker{id: 7}, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			values[i] = h.Value()
			h.Release()
		}(i)
	}
	close(gate)
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("builder ran %d times for one key, want 1", builds.Load())
	}
	for i := 1; i < callers; i++ {
		if values[i] != values[0] {
			t.Fatal("coalesced callers received different values")
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits+s.Coalesced != callers-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d shared gets", s, callers-1)
	}
}

// TestBuildPanicDoesNotWedgeKey: a panicking builder must propagate to
// its caller, fail coalesced waiters with ErrBuildPanicked instead of
// blocking them forever, and leave the key rebuildable.
func TestBuildPanicDoesNotWedgeKey(t *testing.T) {
	c := New[int, *tracker](0)
	defer c.Close()
	gate := make(chan struct{})
	gate2 := make(chan struct{})
	waiterDone := make(chan error, 1)
	builderDone := make(chan any, 1)
	go func() {
		defer func() { builderDone <- recover() }()
		c.Get(1, func() (*tracker, error) {
			close(gate) // a waiter can now pile up on this in-flight build
			<-gate2
			panic("inspector blew up")
		})
	}()
	<-gate
	go func() {
		_, err := c.Get(1, newTracker(1))
		waiterDone <- err
	}()
	// Give the waiter a moment to park on the in-flight entry, then let
	// the builder panic.
	for c.Stats().Coalesced+c.Stats().Hits == 0 {
		runtime.Gosched()
	}
	close(gate2)
	if r := <-builderDone; r == nil {
		t.Fatal("builder panic did not propagate")
	}
	if err := <-waiterDone; !errors.Is(err, ErrBuildPanicked) {
		t.Fatalf("coalesced waiter got %v, want ErrBuildPanicked", err)
	}
	if s := c.Stats(); s.Coalesced != 0 || s.Hits != 0 {
		t.Fatalf("failed-build waiter still counted as served: %+v", s)
	}
	// The key must be rebuildable afterwards.
	h, err := c.Get(1, newTracker(1))
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	if c.Len() != 1 {
		t.Fatalf("resident = %d after rebuild, want 1", c.Len())
	}
}

func TestCloseEvictsAllAndRejectsGets(t *testing.T) {
	c := New[int, *tracker](0)
	h, err := c.Get(1, newTracker(1))
	if err != nil {
		t.Fatal(err)
	}
	tr := h.Value()
	h2, err := c.Get(2, newTracker(2))
	if err != nil {
		t.Fatal(err)
	}
	tr2 := h2.Value()
	h2.Release()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if tr2.closes.Load() != 1 {
		t.Fatal("idle entry not closed by cache Close")
	}
	if tr.closes.Load() != 0 {
		t.Fatal("held entry closed by cache Close")
	}
	if _, err := c.Get(3, newTracker(3)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after Close = %v, want ErrClosed", err)
	}
	h.Release()
	if tr.closes.Load() != 1 {
		t.Fatal("held entry not closed on release after cache Close")
	}
	if err := c.Close(); err != nil {
		t.Fatal("second Close errored")
	}
}

// TestConcurrentStress hammers one small cache with parallel Get, use,
// Evict, Stats and a final Close under the race detector, then checks the
// lifecycle invariants: no value observed closed while a handle pinned
// it, and every built value closed exactly once by the end.
func TestConcurrentStress(t *testing.T) {
	c := New[int, *tracker](4)
	var mu sync.Mutex
	var built []*tracker
	const (
		workers = 8
		iters   = 400
		keys    = 16
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				k := rng.Intn(keys)
				h, err := c.Get(k, func() (*tracker, error) {
					tr := &tracker{id: k}
					mu.Lock()
					built = append(built, tr)
					mu.Unlock()
					return tr, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				v := h.Value()
				if v.id != k {
					t.Errorf("key %d returned value for id %d", k, v.id)
				}
				if v.closes.Load() != 0 {
					t.Error("pinned value observed closed")
				}
				if rng.Intn(8) == 0 {
					c.Evict(rng.Intn(keys))
				}
				if rng.Intn(16) == 0 {
					c.Stats()
				}
				h.Release()
			}
		}(w)
	}
	wg.Wait()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, tr := range built {
		if n := tr.closes.Load(); n != 1 {
			t.Fatalf("tracker %d closed %d times, want exactly 1 (built %d total)", tr.id, n, len(built))
		}
	}
	s := c.Stats()
	total := s.Hits + s.Coalesced + s.Misses
	if total != workers*iters {
		t.Fatalf("accounted gets = %d, want %d", total, workers*iters)
	}
}

func ExampleCache() {
	c := New[string, *tracker](8)
	defer c.Close()
	h, _ := c.Get("mesh-120x120/p4", func() (*tracker, error) {
		fmt.Println("inspector runs once")
		return &tracker{}, nil
	})
	defer h.Release()
	h2, _ := c.Get("mesh-120x120/p4", func() (*tracker, error) {
		fmt.Println("never printed")
		return &tracker{}, nil
	})
	defer h2.Release()
	fmt.Println("shared:", h.Value() == h2.Value())
	// Output:
	// inspector runs once
	// shared: true
}
