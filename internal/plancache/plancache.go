// Package plancache provides a concurrency-safe, reference-counted LRU
// cache for prepared execution plans. The paper's economics rest on
// amortizing the inspector over many executor runs (§5.1.1); this package
// extends that amortization across callers: N concurrent clients solving
// structurally identical problems share one inspector run — and, for the
// pooled executor, one persistent worker pool — instead of paying N times.
//
// The cache is generic over the key (a fingerprint of the dependence
// structure plus the plan configuration) and the value (anything with a
// Close method: a core.Runtime, a trisolve plan, ...). Three properties
// make it safe for the serving workloads the roadmap targets:
//
//   - Singleflight misses: concurrent Gets for the same absent key run the
//     builder once; the losers block until the winner's plan is ready and
//     then share it.
//   - Reference counting: Get returns a Handle that pins the entry. An
//     entry evicted by LRU pressure (or by Close) is only Closed after the
//     last handle is released, so no caller ever runs a torn-down plan.
//   - Close-on-evict: once the final reference to an evicted entry drops,
//     its value's Close runs exactly once, releasing pooled workers.
package plancache

import (
	"errors"
	"io"
	"sync"
)

// ErrClosed reports a Get on a cache whose Close has been called.
var ErrClosed = errors.New("plancache: cache is closed")

// ErrBuildPanicked is returned to callers coalesced onto a build whose
// builder panicked (the panic itself propagates on the builder's
// goroutine). The key is removed, so a later Get retries the build.
var ErrBuildPanicked = errors.New("plancache: plan builder panicked")

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits      uint64 // Gets served from a resident, built entry
	Coalesced uint64 // Gets served by joining another caller's in-flight build
	Misses    uint64 // Gets that ran the builder (successfully or not)
	Evictions uint64 // entries displaced by LRU pressure or cache Close
	Resident  int    // entries currently in the cache (built or building)
}

// HitRate returns the fraction of Gets served without running the builder.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Coalesced + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Coalesced) / float64(total)
}

// Cache is a keyed plan cache with LRU eviction. The zero value is not
// usable; construct with New. All methods are safe for concurrent use.
type Cache[K comparable, V io.Closer] struct {
	mu       sync.Mutex
	capacity int // <= 0 means unbounded
	entries  map[K]*entry[K, V]
	lru      lruList[K, V] // front = most recently used
	stats    Stats
	closed   bool
}

// entry is one cached plan. refs counts outstanding Handles plus, during
// construction, the builder itself; evicted entries are out of the map and
// are closed when refs reaches zero.
type entry[K comparable, V io.Closer] struct {
	key        K
	val        V
	err        error
	ready      chan struct{} // closed when the builder finishes
	refs       int           // guarded by Cache.mu
	evicted    bool          // guarded by Cache.mu
	built      bool          // val is valid and must eventually be Closed
	prev, next *entry[K, V]  // LRU links, guarded by Cache.mu
}

// New returns a cache holding at most capacity plans; capacity <= 0 means
// unbounded. Eviction is strict LRU over resident entries, but an entry
// with outstanding handles is torn down only after its last Release.
func New[K comparable, V io.Closer](capacity int) *Cache[K, V] {
	return &Cache[K, V]{capacity: capacity, entries: make(map[K]*entry[K, V])}
}

// Get returns a handle to the plan cached under key, building it with
// build on a miss. Concurrent Gets for one absent key run build once and
// share the result. The caller must Release the handle when done with the
// plan; the value stays valid until then even if the entry is evicted. If
// build fails, the error is returned to every waiting caller and nothing
// is cached.
func (c *Cache[K, V]) Get(key K, build func() (V, error)) (*Handle[K, V], error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if e, ok := c.entries[key]; ok {
		e.refs++
		c.lru.moveToFront(e)
		select {
		case <-e.ready:
			c.stats.Hits++
		default:
			c.stats.Coalesced++
		}
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			// The builder already removed the failed entry from the map;
			// drop the reference taken above and uncount this Get from
			// Coalesced — it was not served a plan, and leaving it in
			// would inflate HitRate whenever builds fail. (A waiter on a
			// build that fails is always in the Coalesced bucket: the
			// failure path removes the entry from the map before closing
			// ready, so no Get can count a Hit against a failed entry.)
			err := e.err
			c.mu.Lock()
			c.stats.Coalesced--
			toClose := c.releaseLocked(e)
			c.mu.Unlock()
			closeIgnored(toClose)
			return nil, err
		}
		return &Handle[K, V]{c: c, e: e}, nil
	}
	e := &entry[K, V]{key: key, ready: make(chan struct{}), refs: 1}
	c.entries[key] = e
	c.lru.pushFront(e)
	c.stats.Misses++
	evict := c.evictExcessLocked()
	c.mu.Unlock()
	closeIgnored(evict)

	v, err := c.runBuild(e, build)

	c.mu.Lock()
	e.val, e.err = v, err
	e.built = err == nil
	if err != nil && !e.evicted {
		delete(c.entries, e.key)
		c.lru.remove(e)
		e.evicted = true
	}
	var toClose []V
	if err != nil {
		toClose = c.releaseLocked(e)
	}
	c.mu.Unlock()
	close(e.ready)
	if err != nil {
		closeIgnored(toClose)
		return nil, err
	}
	return &Handle[K, V]{c: c, e: e}, nil
}

// runBuild invokes the builder, converting a panic (or runtime.Goexit)
// into a failed entry first: the entry is removed and its ready channel
// closed with ErrBuildPanicked, so coalesced and future Gets for the key
// fail or retry instead of blocking forever on a channel nobody will
// close. The panic itself still propagates to the building caller.
func (c *Cache[K, V]) runBuild(e *entry[K, V], build func() (V, error)) (v V, err error) {
	completed := false
	defer func() {
		if completed {
			return
		}
		c.mu.Lock()
		e.err = ErrBuildPanicked
		if !e.evicted {
			delete(c.entries, e.key)
			c.lru.remove(e)
			e.evicted = true
		}
		toClose := c.releaseLocked(e) // drop the builder's reference
		c.mu.Unlock()
		close(e.ready)
		closeIgnored(toClose)
	}()
	v, err = build()
	completed = true
	return v, err
}

// NoteHit counts a lookup served without touching the cache — a caller
// holding its own memoized reference to a cached value (the serving
// tier's bound-solver memo does this). The memo is a hit in every sense
// the counter exists to measure: a plan lookup answered without the
// inspector.
func (c *Cache[K, V]) NoteHit() {
	c.mu.Lock()
	c.stats.Hits++
	c.mu.Unlock()
}

// Keys returns up to limit resident keys, most recently used first
// (limit <= 0 means all). Entries still being built are included — a
// key's presence means a caller wanted it, which is what hotness
// enumeration (the sharded tier's warm handoff) needs. The snapshot is
// point-in-time: keys may be evicted before the caller acts on them.
func (c *Cache[K, V]) Keys(limit int) []K {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.entries)
	if limit > 0 && limit < n {
		n = limit
	}
	keys := make([]K, 0, n)
	for e := c.lru.front; e != nil && len(keys) < n; e = e.next {
		keys = append(keys, e.key)
	}
	return keys
}

// Peek returns a handle to a built, resident entry without counting a
// hit or refreshing its LRU position — an observer's read, not a
// caller's. It reports false for absent keys and for entries whose
// build is still in flight (Peek never blocks). The handle pins the
// value like Get's and must be Released.
func (c *Cache[K, V]) Peek(key K) (*Handle[K, V], bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || !e.built {
		return nil, false
	}
	select {
	case <-e.ready:
	default:
		return nil, false
	}
	e.refs++
	return &Handle[K, V]{c: c, e: e}, true
}

// Stats returns a snapshot of the cache counters.
func (c *Cache[K, V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Resident = len(c.entries)
	return s
}

// Len returns the number of resident entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Evict removes the entry for key, if resident, returning whether it was.
// The entry's value is closed once its outstanding handles are released.
func (c *Cache[K, V]) Evict(key K) bool {
	c.mu.Lock()
	e, ok := c.entries[key]
	var toClose []V
	if ok {
		toClose = c.evictLocked(e)
	}
	c.mu.Unlock()
	closeIgnored(toClose)
	return ok
}

// Close evicts every entry and marks the cache closed; subsequent Gets
// return ErrClosed. Entries with outstanding handles are closed when their
// last handle is released. Close is idempotent.
func (c *Cache[K, V]) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	var toClose []V
	for c.lru.back != nil {
		toClose = append(toClose, c.evictLocked(c.lru.back)...)
	}
	c.mu.Unlock()
	return closeAll(toClose)
}

// evictExcessLocked applies the LRU bound, returning values to close.
func (c *Cache[K, V]) evictExcessLocked() []V {
	if c.capacity <= 0 {
		return nil
	}
	var toClose []V
	for len(c.entries) > c.capacity && c.lru.back != nil {
		toClose = append(toClose, c.evictLocked(c.lru.back)...)
	}
	return toClose
}

// evictLocked unlinks e from the map and LRU list; if no handles remain it
// returns the value for the caller to close outside the lock.
func (c *Cache[K, V]) evictLocked(e *entry[K, V]) []V {
	delete(c.entries, e.key)
	c.lru.remove(e)
	e.evicted = true
	c.stats.Evictions++
	if e.refs == 0 && e.built {
		e.built = false
		return []V{e.val}
	}
	return nil
}

// releaseLocked drops one reference, returning the value to close if e was
// evicted and this was the final reference.
func (c *Cache[K, V]) releaseLocked(e *entry[K, V]) []V {
	e.refs--
	if e.refs == 0 && e.evicted && e.built {
		e.built = false
		return []V{e.val}
	}
	return nil
}

// Handle pins one cached plan. Value stays usable until Release.
type Handle[K comparable, V io.Closer] struct {
	c        *Cache[K, V]
	e        *entry[K, V]
	released bool
	mu       sync.Mutex
}

// Value returns the cached plan. It must not be used after Release.
func (h *Handle[K, V]) Value() V { return h.e.val }

// Release unpins the plan. If the entry was evicted and this was the last
// handle, the plan's Close runs here and its error is returned. Release is
// idempotent; extra calls return nil.
func (h *Handle[K, V]) Release() error {
	h.mu.Lock()
	if h.released {
		h.mu.Unlock()
		return nil
	}
	h.released = true
	h.mu.Unlock()
	h.c.mu.Lock()
	toClose := h.c.releaseLocked(h.e)
	h.c.mu.Unlock()
	return closeAll(toClose)
}

func closeAll[V io.Closer](vs []V) error {
	var first error
	for _, v := range vs {
		if err := v.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func closeIgnored[V io.Closer](vs []V) { _ = closeAll(vs) }

// lruList is an intrusive doubly-linked list over entries; front is the
// most recently used end.
type lruList[K comparable, V io.Closer] struct {
	front, back *entry[K, V]
}

func (l *lruList[K, V]) pushFront(e *entry[K, V]) {
	e.prev, e.next = nil, l.front
	if l.front != nil {
		l.front.prev = e
	}
	l.front = e
	if l.back == nil {
		l.back = e
	}
}

func (l *lruList[K, V]) remove(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.front = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.back = e.prev
	}
	e.prev, e.next = nil, nil
}

func (l *lruList[K, V]) moveToFront(e *entry[K, V]) {
	if l.front == e {
		return
	}
	l.remove(e)
	l.pushFront(e)
}
