# make verify mirrors the CI pipeline (lint gate, tier-1 tests, race,
# fuzz smoke, coverage gate, bench smoke + regression gate) so a green
# local run means a green CI run. Individual steps are also exposed as
# targets. staticcheck/govulncheck run in CI with pinned versions; they
# are invoked here only when already installed, so verify works offline.

GO ?= go
FUZZTIME ?= 10s

.PHONY: verify fmt vet lint-tools build test race fuzz cover bench-smoke bench bench-update clean

verify: fmt vet lint-tools build test race fuzz cover bench-smoke
	@echo "verify: all checks passed"

# Mirror the CI staticcheck/govulncheck steps when the pinned tools are
# on PATH; skip quietly otherwise (CI always runs them).
lint-tools:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "lint-tools: staticcheck not installed, skipping (CI runs it)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
		else echo "lint-tools: govulncheck not installed, skipping (CI runs it)"; fi

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The CI fuzz smoke: coverage-guided exploration beyond the checked-in
# seeds, one target at a time (go test allows one -fuzz per invocation).
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzAdaptiveSolve$$' -fuzztime $(FUZZTIME) ./internal/trisolve
	$(GO) test -run '^$$' -fuzz '^FuzzFusedSolve$$' -fuzztime $(FUZZTIME) ./internal/trisolve
	$(GO) test -run '^$$' -fuzz '^FuzzSelect$$' -fuzztime $(FUZZTIME) ./internal/planner
	$(GO) test -run '^$$' -fuzz '^FuzzRepair$$' -fuzztime $(FUZZTIME) ./internal/delta
	$(GO) test -run '^$$' -fuzz '^FuzzFrameDecode$$' -fuzztime $(FUZZTIME) ./internal/server

# The CI coverage gate: total statement coverage vs the checked-in floor.
cover:
	$(GO) run ./cmd/ci coverage

# One repetition of the CI bench job: fast local check that the gate and
# artifact plumbing still work.
bench-smoke:
	$(GO) run ./cmd/ci bench -count 1 -out BENCH_ci.json

# The full CI bench job (5 repetitions, benchstat-comparable artifact).
bench:
	$(GO) run ./cmd/ci bench -count 5 -out BENCH_ci.json

# Rewrite ci/bench_baseline.json from this machine's run.
bench-update:
	$(GO) run ./cmd/ci bench -count 5 -out BENCH_ci.json -update

clean:
	rm -f BENCH_ci.json coverage.out
