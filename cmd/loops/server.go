package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"doconsider/internal/obs"
	"doconsider/internal/server"
)

// serverConfig parameterizes the `loops server` network mode.
type serverConfig struct {
	addr          string
	debugAddr     string // pprof/runtime debug listener; "" disables
	procs         int
	kind          string
	cacheCap      int
	window        time.Duration
	latencyWindow time.Duration // coalescing window for latency-class requests (0 = window/8)
	width         int
	maxInFlight   int
	maxBatch      int
	hotFactors    int // hot-factor ring capacity (0 = server default)
	timeout       time.Duration
	drainWait     time.Duration
	tenantWeights map[string]int // per-tenant DRR weights (nil = everyone weight 1)
	tenantQuota   int            // per-tenant in-flight quota (0 = unlimited)
	tenantQueue   int            // per-tenant per-class admission queue depth
	tenantMax     int            // tenant cardinality cap before pooling into "other"
}

func (c serverConfig) serverOptions() server.Config {
	return server.Config{
		Procs:          c.procs,
		Kind:           c.kind,
		CacheCap:       c.cacheCap,
		HotFactorCap:   c.hotFactors,
		MaxBatch:       c.maxBatch,
		DefaultTimeout: c.timeout,
		Admission: server.AdmissionConfig{
			MaxInFlight: c.maxInFlight,
			Queue:       c.tenantQueue,
		},
		Coalesce: server.CoalesceConfig{
			Window:        c.window,
			LatencyWindow: c.latencyWindow,
			Width:         c.width,
		},
		Tenant: server.TenantConfig{
			Weights: c.tenantWeights,
			Quota:   c.tenantQuota,
			Max:     c.tenantMax,
		},
	}
}

// runServer is the `loops server` experiment: serve the trisolve API on a
// network address until interrupted, then drain gracefully (accepted
// requests finish, new ones are refused). stop, when non-nil, substitutes
// for SIGINT/SIGTERM in tests.
func runServer(w io.Writer, cfg serverConfig, stop <-chan struct{}) error {
	s, err := server.New(cfg.serverOptions())
	if err != nil {
		return err
	}
	if err := s.Start(cfg.addr); err != nil {
		return err
	}
	fmt.Fprintf(w, "server: listening on %s (%d procs/plan, %s executor, window %s, width %d, max in-flight %d)\n",
		s.Addr(), cfg.procs, cfg.kind, cfg.window, cfg.width, cfg.maxInFlight)
	fmt.Fprintf(w, "server: POST /v1/trisolve, GET /v1/stats /v1/trace /v1/trace/slowest /healthz /metrics\n")

	// The debug listener is a separate port on purpose: pprof endpoints
	// can stall the world and must not share the serving mux or its
	// admission control.
	var debugSrv *http.Server
	if cfg.debugAddr != "" {
		ln, err := net.Listen("tcp", cfg.debugAddr)
		if err != nil {
			return fmt.Errorf("server: debug listener: %w", err)
		}
		debugSrv = &http.Server{Handler: obs.DebugHandler()}
		go func() {
			if err := debugSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(w, "server: debug listener: %v\n", err)
			}
		}()
		fmt.Fprintf(w, "server: debug listener on %s (GET /debug/pprof/ /debug/runtime)\n", ln.Addr())
	}

	if stop == nil {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sig)
		<-sig
	} else {
		<-stop
	}

	fmt.Fprintf(w, "server: draining (up to %s)...\n", cfg.drainWait)
	ctx, cancel := context.WithTimeout(context.Background(), cfg.drainWait)
	defer cancel()
	if debugSrv != nil {
		_ = debugSrv.Close() // nothing to drain: profiles are best-effort
	}
	if err := s.Shutdown(ctx); err != nil {
		return fmt.Errorf("server: drain: %w", err)
	}
	st := s.Stats()
	fmt.Fprintf(w, "server: drained; served %d requests (%d shed), coalescing rate %.1f%%, cache hit rate %.1f%%\n",
		st.Accepted, st.Shed, 100*st.Coalesce.Rate, 100*st.CacheHitRate)
	return nil
}
