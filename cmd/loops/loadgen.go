package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"doconsider/client"
	"doconsider/internal/obs"
	"doconsider/internal/problems"
	"doconsider/internal/server"
	"doconsider/internal/synthetic"
)

// Wire formats the load generator can speak. JSON packs the RHS as
// base64 (b_b64); binary ships the whole request as a zero-copy frame
// (Content-Type application/x-doconsider-frame) that the server decodes
// by slicing into pooled arena memory.
const (
	wireJSON   = "json"
	wireBinary = "binary"
)

// loadgenConfig parameterizes the concurrent load generator: a pool of
// client goroutines posts triangular-solve requests to a running server
// over the recurring problem suite and reports throughput, latency
// percentiles and the server-side coalescing and cache rates.
type loadgenConfig struct {
	baseURL    string        // e.g. http://127.0.0.1:8080
	clients    int           // concurrent client goroutines
	requests   int           // total requests across all clients
	batch      int           // right-hand sides per request
	seed       int64         // base RNG seed; client i uses seed+i
	timeout    time.Duration // per-request client timeout (0 = none)
	problems   []string      // problem names; nil = the trisolve suite
	fullMatrix bool          // ship the full CSR every request instead of by-fingerprint reuse
	driftRate  float64       // probability a request structurally drifts its problem
	driftEdits int           // row edits per drift step
	wire       string        // wireJSON (default when empty) or wireBinary
	trace      bool          // fetch /v1/trace after the run and report per-stage latency
	quiet      bool          // suppress the progress header
	tenants    int           // adversarial multi-tenant mix: tenant 0 latency-class, rest batch (0 disables)
	tag        tenantTag     // per-client tenant identity; set on goroutine-local copies, not shared
	noStats    bool          // skip /v1/stats deltas (cluster mode: the front door has router-level stats instead)
}

// tenantTag is the per-client tenant identity in -tenants mode. The zero
// tag means untagged traffic (the server files it under its default
// tenant), which keeps single-tenant runs byte-identical to before.
type tenantTag struct {
	name  string
	class string // "latency" or "batch"; "" defaults to batch server-side
}

// tenantTagFor maps a client to its tenant in the adversarial mix:
// clients are dealt round-robin across cfg.tenants tenants, tenant 0 is
// the lone latency-class tenant and the rest flood as batch class.
func (cfg *loadgenConfig) tenantTagFor(clientID int) tenantTag {
	if cfg.tenants < 2 {
		return tenantTag{}
	}
	ti := clientID % cfg.tenants
	if ti == 0 {
		return tenantTag{name: "lat-0", class: "latency"}
	}
	return tenantTag{name: fmt.Sprintf("batch-%d", ti), class: "batch"}
}

// clientFor derives the per-tenant client for the tag: untagged traffic
// rides the shared base client unchanged.
func (tag tenantTag) clientFor(base *client.Client) *client.Client {
	if tag.name == "" {
		return base
	}
	return base.ForTenant(tag.name, tag.class)
}

// loadgenReport aggregates one load-generation run.
type loadgenReport struct {
	elapsed        time.Duration
	ok             int
	refused        int    // 429 shed + 503 draining
	failed         int    // transport errors and unexpected statuses
	failMsg        string // sample failure, so "N failed" is debuggable
	fused          int    // OK responses that shared an executor pass
	drifted        int    // OK responses to base_fp+edits drift requests
	driftFell      int    // drift requests that fell back to a full ship (404)
	latencies      []time.Duration
	statsOK        bool
	coalesceRate   float64
	cacheHitRate   float64
	passes, shed   uint64
	serverRequests uint64
	repairs        uint64                      // plan misses served by delta repair
	repairFalls    uint64                      // repair attempts that rebuilt instead
	plannerKind    string                      // server's configured kind ("auto" = adaptive)
	plannerCounts  map[string]uint64           // plan builds by chosen strategy
	superPlans     uint64                      // fused plan builds this run
	superRows      uint64                      // rows those plans cover
	superFusedRows uint64                      // rows inside width >= 2 supernodes
	superMaxWidth  int                         // widest supernode the cache has seen
	stageMs        map[string][]float64        // per-stage millisecond samples from /v1/trace (-trace)
	traceDropped   uint64                      // traces the server's ring dropped under contention
	perTenant      map[string]*tenantRunReport // -tenants mode: client-side per-tenant breakdown
	tenantStats    []server.TenantStats        // server-side per-tenant snapshot after the run
}

// tenantRunReport is one tenant's client-side slice of the run.
type tenantRunReport struct {
	class     string
	ok        int
	refused   int
	failed    int
	latencies []time.Duration
}

func pctDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// throughput returns completed solves per second (requests x batch).
func (r *loadgenReport) throughput(batch int) float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.ok*batch) / r.elapsed.Seconds()
}

// percentile returns the q-quantile of the collected latencies.
func (r *loadgenReport) percentile(q float64) time.Duration {
	if len(r.latencies) == 0 {
		return 0
	}
	i := int(q*float64(len(r.latencies))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(r.latencies) {
		i = len(r.latencies) - 1
	}
	return r.latencies[i]
}

// loadTemplate is the per-problem state of the load generator: a
// client.Factor handle (which owns the fingerprint-resubmission and
// drift discipline) plus the wavefronts drift-edit generation needs.
// Templates are shared across all clients — real tenants recurring on
// one problem would do the same.
type loadTemplate struct {
	f  *client.Factor
	wf []int32 // wavefronts of the factor; invariant under level-compatible drift
}

func loadgenTemplates(names []string) ([]*loadTemplate, error) {
	tmpl := make([]*loadTemplate, len(names))
	for i, name := range names {
		p, err := problems.Get(name)
		if err != nil {
			return nil, err
		}
		tmpl[i] = &loadTemplate{f: client.NewFactor(p.L, true), wf: p.Wf}
	}
	return tmpl, nil
}

// fetchStats reads /v1/stats; failures are soft (the server may already
// be draining when the run ends).
func fetchStats(cli *client.Client) (server.StatsResponse, bool) {
	st, err := cli.Stats(context.Background())
	return st, err == nil
}

// fetchTraces pulls up to limit completed traces from the server's ring
// and buckets their per-stage millisecond samples by stage name.
// Failures are soft, like fetchStats.
func fetchTraces(cli *client.Client, limit int) (map[string][]float64, uint64, bool) {
	var tl server.TraceListResponse
	if err := cli.GetJSON(context.Background(), fmt.Sprintf("/v1/trace?limit=%d", limit), &tl); err != nil {
		return nil, 0, false
	}
	stages := make(map[string][]float64)
	for _, tr := range tl.Traces {
		for stage, ms := range tr.Stages {
			stages[stage] = append(stages[stage], ms)
		}
	}
	return stages, tl.Dropped, true
}

// loadgen drives the server at cfg.baseURL and returns the aggregated
// report. Requests shed (429) or refused while draining (503) are counted
// but not retried, so a drain mid-run terminates cleanly.
func loadgen(w io.Writer, cfg loadgenConfig) (*loadgenReport, error) {
	if cfg.clients < 1 || cfg.requests < 1 || cfg.batch < 1 {
		return nil, fmt.Errorf("loadgen: clients, requests and batch must be positive")
	}
	switch cfg.wire {
	case "", wireJSON, wireBinary:
	default:
		return nil, fmt.Errorf("loadgen: unknown wire format %q (want %s or %s)", cfg.wire, wireJSON, wireBinary)
	}
	names := cfg.problems
	if len(names) == 0 {
		names = problems.TriSolveNames()
	}
	tmpl, err := loadgenTemplates(names)
	if err != nil {
		return nil, err
	}
	if cfg.tenants != 0 && cfg.tenants < 2 {
		return nil, fmt.Errorf("loadgen: -tenants needs at least 2 tenants (1 latency + >=1 batch), got %d", cfg.tenants)
	}
	if !cfg.quiet {
		wire := cfg.wire
		if wire == "" {
			wire = wireJSON
		}
		fmt.Fprintf(w, "loadgen: %d clients, %d requests, batch %d over %d problems (%s wire) -> %s\n",
			cfg.clients, cfg.requests, cfg.batch, len(tmpl), wire, cfg.baseURL)
		if cfg.tenants >= 2 {
			fmt.Fprintf(w, "loadgen: adversarial tenant mix: 1 latency tenant (lat-0) vs %d batch tenants\n", cfg.tenants-1)
		}
	}
	ctx := context.Background()
	wireOpt := client.WireJSON
	if cfg.wire == wireBinary {
		wireOpt = client.WireBinary
	}
	cli := client.New(cfg.baseURL, client.WithWire(wireOpt), client.WithTimeout(cfg.timeout))

	// Warmup (untimed): register every factor with a full submission so
	// the timed run measures the recurring steady state — by-fingerprint
	// requests over warm plan and factor caches. Factor.Solve ships the
	// full matrix (no fingerprint yet) and commits the returned one.
	if !cfg.fullMatrix {
		rng := rand.New(rand.NewSource(cfg.seed - 1))
		for _, t := range tmpl {
			if _, err := t.f.Solve(ctx, cli, randomBatch(rng, 1, t.f.N())); err != nil {
				return nil, fmt.Errorf("loadgen: warmup: %w", err)
			}
		}
	}
	var before server.StatsResponse
	beforeOK := false
	if !cfg.noStats {
		before, beforeOK = fetchStats(cli)
	}

	var next atomic.Int64
	var mu sync.Mutex
	rep := &loadgenReport{}
	if cfg.tenants >= 2 {
		rep.perTenant = make(map[string]*tenantRunReport)
	}
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(clientID int) {
			defer wg.Done()
			// Per-tenant derived client: shares the base client's
			// transport, adds the tenant identity to every request.
			tag := cfg.tenantTagFor(clientID)
			ccli := tag.clientFor(cli)
			rng := rand.New(rand.NewSource(cfg.seed + int64(clientID)))
			for {
				reqID := int(next.Add(1)) - 1
				if reqID >= cfg.requests {
					return
				}
				t := tmpl[rng.Intn(len(tmpl))]
				b := randomBatch(rng, cfg.batch, t.f.N())
				drift := cfg.driftRate > 0 && cfg.driftEdits > 0 && !cfg.fullMatrix &&
					rng.Float64() < cfg.driftRate
				t0 := time.Now()
				var sr *client.Response
				var err error
				attempted, fellBack := false, false
				switch {
				case cfg.fullMatrix:
					sr, err = t.f.SolveFull(ctx, ccli, b)
				case drift:
					// Snapshot and edit generation must use one consistent
					// matrix/fingerprint pair (State), or a concurrent drift
					// could slide a newer base under these edits.
					st := t.f.State()
					edits := synthetic.DriftLower(rng, st.Cur, t.wf, cfg.driftEdits, 0.3)
					if len(edits) == 0 || st.Fp == "" {
						// The structure admits no drift (or was never
						// registered): plain recurring request.
						sr, err = t.f.Solve(ctx, ccli, b)
					} else {
						attempted = true
						sr, fellBack, err = t.f.Drift(ctx, ccli, st, edits, b)
					}
				default:
					sr, err = t.f.Solve(ctx, ccli, b)
				}
				lat := time.Since(t0)
				mu.Lock()
				var trep *tenantRunReport
				if rep.perTenant != nil {
					trep = rep.perTenant[tag.name]
					if trep == nil {
						trep = &tenantRunReport{class: tag.class}
						rep.perTenant[tag.name] = trep
					}
				}
				var ae *client.APIError
				switch {
				case err == nil:
					if len(sr.X)+len(sr.X64) != cfg.batch {
						rep.failed++
						if trep != nil {
							trep.failed++
						}
						if rep.failMsg == "" {
							rep.failMsg = fmt.Sprintf("200 with %d solutions, want %d", len(sr.X)+len(sr.X64), cfg.batch)
						}
					} else {
						rep.ok++
						rep.latencies = append(rep.latencies, lat)
						if trep != nil {
							trep.ok++
							trep.latencies = append(trep.latencies, lat)
						}
						if sr.Fused > 1 {
							rep.fused++
						}
						if attempted {
							rep.drifted++
							if fellBack {
								rep.driftFell++
							}
						}
					}
				case errors.As(err, &ae) && ae.Overloaded():
					rep.refused++
					if trep != nil {
						trep.refused++
					}
				default:
					rep.failed++
					if trep != nil {
						trep.failed++
					}
					if rep.failMsg == "" {
						rep.failMsg = err.Error()
					}
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	rep.elapsed = time.Since(start)
	sort.Slice(rep.latencies, func(i, j int) bool { return rep.latencies[i] < rep.latencies[j] })
	for _, trep := range rep.perTenant {
		lat := trep.latencies
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	}

	if after, ok := fetchStats(cli); ok && beforeOK {
		rep.statsOK = true
		rep.tenantStats = after.Tenants
		rep.cacheHitRate = after.CacheHitRate
		rep.shed = after.Shed - before.Shed
		rep.passes = after.Coalesce.Passes - before.Coalesce.Passes
		rep.serverRequests = after.Coalesce.Requests - before.Coalesce.Requests
		rep.repairs = after.Delta.Repairs - before.Delta.Repairs
		rep.repairFalls = after.Delta.Fallbacks - before.Delta.Fallbacks
		rep.plannerKind = after.Planner.Kind
		// Like the other server counters, report this run's delta — a
		// long-running server's lifetime decision counts would
		// misattribute earlier traffic to this run.
		rep.plannerCounts = make(map[string]uint64, len(after.Planner.Counts))
		for name, n := range after.Planner.Counts {
			if d := n - before.Planner.Counts[name]; d > 0 {
				rep.plannerCounts[name] = d
			}
		}
		if rep.serverRequests > 0 {
			rep.coalesceRate = float64(after.Coalesce.Fused-before.Coalesce.Fused) / float64(rep.serverRequests)
		}
		rep.superPlans = after.Supernode.FusedPlans - before.Supernode.FusedPlans
		rep.superRows = after.Supernode.Rows - before.Supernode.Rows
		rep.superFusedRows = after.Supernode.FusedRows - before.Supernode.FusedRows
		rep.superMaxWidth = after.Supernode.MaxWidth
	}
	if cfg.trace {
		if stages, dropped, ok := fetchTraces(cli, cfg.requests); ok {
			rep.stageMs = stages
			rep.traceDropped = dropped
		}
	}
	return rep, nil
}

// randomBatch draws k right-hand sides of length n. Requests carry them
// in B; the JSON poster packs them to b_b64 at encode time (recurring
// numeric traffic has no business re-parsing decimal floats on every
// request) and the binary poster writes them straight into the frame.
func randomBatch(rng *rand.Rand, k, n int) [][]float64 {
	bs := make([][]float64, k)
	for j := range bs {
		row := make([]float64, n)
		for i := range row {
			row[i] = rng.Float64()
		}
		bs[j] = row
	}
	return bs
}

// printLoadgenReport renders the report in the serve/loadgen output style.
func printLoadgenReport(w io.Writer, rep *loadgenReport, batch int) {
	fmt.Fprintf(w, "  wall %8.1f ms, %8.0f solves/s (%d ok of which %d fused, %d refused, %d failed)\n",
		rep.elapsed.Seconds()*1e3, rep.throughput(batch), rep.ok, rep.fused, rep.refused, rep.failed)
	if len(rep.latencies) > 0 {
		fmt.Fprintf(w, "  latency: p50 %s  p90 %s  p99 %s  max %s\n",
			rep.percentile(0.50).Round(time.Microsecond),
			rep.percentile(0.90).Round(time.Microsecond),
			rep.percentile(0.99).Round(time.Microsecond),
			rep.latencies[len(rep.latencies)-1].Round(time.Microsecond))
	}
	if rep.drifted > 0 {
		fmt.Fprintf(w, "  drift: %d drifted requests (%d fell back to a full ship)\n", rep.drifted, rep.driftFell)
	}
	if rep.statsOK {
		fmt.Fprintf(w, "  server: coalescing rate %.1f%% (%d requests fused into %d passes), cache hit rate %.1f%%, %d shed\n",
			100*rep.coalesceRate, rep.serverRequests, rep.passes, 100*rep.cacheHitRate, rep.shed)
		if rep.repairs+rep.repairFalls > 0 {
			fmt.Fprintf(w, "  delta: %d plan misses repaired from a resident ancestor, %d rebuilt (cone/planner fallback)\n",
				rep.repairs, rep.repairFalls)
		}
		if len(rep.plannerCounts) > 0 {
			fmt.Fprintf(w, "  planner: kind=%s decisions: %s\n", rep.plannerKind, formatPlannerCounts(rep.plannerCounts))
		}
		if rep.superPlans > 0 {
			fmt.Fprintf(w, "  supernode: %d fused plans (%d of %d rows fused, max width %d)\n",
				rep.superPlans, rep.superFusedRows, rep.superRows, rep.superMaxWidth)
		}
	}
	printTenantTable(w, rep)
	printStageTable(w, rep)
}

// printTenantTable renders the -tenants adversarial-mix breakdown: the
// client-side view (ok/refused and latency percentiles per tenant) plus
// the server's own per-tenant shed counts when /v1/stats was reachable.
func printTenantTable(w io.Writer, rep *loadgenReport) {
	if len(rep.perTenant) == 0 {
		return
	}
	names := make([]string, 0, len(rep.perTenant))
	for name := range rep.perTenant {
		names = append(names, name)
	}
	sort.Strings(names)
	shed := make(map[string]uint64, len(rep.tenantStats))
	for _, ts := range rep.tenantStats {
		shed[ts.Name] = ts.Shed
	}
	fmt.Fprintf(w, "  tenants:\n")
	fmt.Fprintf(w, "    %-10s %-8s %6s %8s %8s %10s %10s\n", "tenant", "class", "ok", "refused", "failed", "p50", "p99")
	for _, name := range names {
		t := rep.perTenant[name]
		shedNote := ""
		if n, known := shed[name]; known && rep.statsOK {
			shedNote = fmt.Sprintf("  (server shed %d)", n)
		}
		fmt.Fprintf(w, "    %-10s %-8s %6d %8d %8d %10s %10s%s\n",
			name, t.class, t.ok, t.refused, t.failed,
			pctDur(t.latencies, 0.50).Round(time.Microsecond),
			pctDur(t.latencies, 0.99).Round(time.Microsecond), shedNote)
	}
}

// printStageTable renders the per-stage server-side latency percentiles
// collected from /v1/trace under -trace, in pipeline order.
func printStageTable(w io.Writer, rep *loadgenReport) {
	if len(rep.stageMs) == 0 {
		return
	}
	fmt.Fprintf(w, "  stages (server-side, from /v1/trace):\n")
	fmt.Fprintf(w, "    %-10s %10s %10s %10s %10s\n", "stage", "p50", "p90", "p99", "max")
	for i := 0; i < obs.NumStages; i++ {
		name := obs.Stage(i).String()
		ms := rep.stageMs[name]
		if len(ms) == 0 {
			continue
		}
		sort.Float64s(ms)
		fmt.Fprintf(w, "    %-10s %8.3fms %8.3fms %8.3fms %8.3fms\n", name,
			pctMs(ms, 0.50), pctMs(ms, 0.90), pctMs(ms, 0.99), ms[len(ms)-1])
	}
	if rep.traceDropped > 0 {
		fmt.Fprintf(w, "    (%d traces dropped by the server's ring under contention)\n", rep.traceDropped)
	}
}

// pctMs returns the q-quantile of an ascending-sorted sample, mirroring
// loadgenReport.percentile for raw milliseconds.
func pctMs(sorted []float64, q float64) float64 {
	i := int(q*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// formatPlannerCounts renders per-strategy plan-build counts sorted by
// strategy name, e.g. "pooled:5 sequential:2".
func formatPlannerCounts(counts map[string]uint64) string {
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s:%d", name, counts[name]))
	}
	return strings.Join(parts, " ")
}
