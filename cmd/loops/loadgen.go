package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"doconsider/internal/problems"
	"doconsider/internal/server"
)

// loadgenConfig parameterizes the concurrent load generator: a pool of
// client goroutines posts triangular-solve requests to a running server
// over the recurring problem suite and reports throughput, latency
// percentiles and the server-side coalescing and cache rates.
type loadgenConfig struct {
	baseURL    string        // e.g. http://127.0.0.1:8080
	clients    int           // concurrent client goroutines
	requests   int           // total requests across all clients
	batch      int           // right-hand sides per request
	seed       int64         // base RNG seed; client i uses seed+i
	timeout    time.Duration // per-request client timeout (0 = none)
	problems   []string      // problem names; nil = the trisolve suite
	fullMatrix bool          // ship the full CSR every request instead of by-fingerprint reuse
	quiet      bool          // suppress the progress header
}

// loadgenReport aggregates one load-generation run.
type loadgenReport struct {
	elapsed        time.Duration
	ok             int
	refused        int    // 429 shed + 503 draining
	failed         int    // transport errors and unexpected statuses
	failMsg        string // sample failure, so "N failed" is debuggable
	fused          int    // OK responses that shared an executor pass
	latencies      []time.Duration
	statsOK        bool
	coalesceRate   float64
	cacheHitRate   float64
	passes, shed   uint64
	serverRequests uint64
	plannerKind    string            // server's configured kind ("auto" = adaptive)
	plannerCounts  map[string]uint64 // plan builds by chosen strategy
}

// throughput returns completed solves per second (requests x batch).
func (r *loadgenReport) throughput(batch int) float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.ok*batch) / r.elapsed.Seconds()
}

// percentile returns the q-quantile of the collected latencies.
func (r *loadgenReport) percentile(q float64) time.Duration {
	if len(r.latencies) == 0 {
		return 0
	}
	i := int(q*float64(len(r.latencies))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(r.latencies) {
		i = len(r.latencies) - 1
	}
	return r.latencies[i]
}

// solveTemplate is the per-problem constant part of a request. fp holds
// the server-assigned content fingerprint once a full submission has
// registered the factor; subsequent requests reference it instead of
// re-shipping the matrix (shared across all clients — real tenants
// recurring on one problem would do the same).
type solveTemplate struct {
	req server.SolveRequest
	fp  atomic.Pointer[string]
}

func loadgenTemplates(names []string) ([]*solveTemplate, error) {
	tmpl := make([]*solveTemplate, len(names))
	lower := true
	for i, name := range names {
		p, err := problems.Get(name)
		if err != nil {
			return nil, err
		}
		tmpl[i] = &solveTemplate{req: server.SolveRequest{
			N: p.L.N, RowPtr: p.L.RowPtr, ColIdx: p.L.ColIdx, Val: p.L.Val, Lower: &lower,
		}}
	}
	return tmpl, nil
}

// fetchStats reads /v1/stats; failures are soft (the server may already
// be draining when the run ends).
func fetchStats(client *http.Client, baseURL string) (server.StatsResponse, bool) {
	var st server.StatsResponse
	resp, err := client.Get(baseURL + "/v1/stats")
	if err != nil {
		return st, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, false
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, false
	}
	return st, true
}

// loadgen drives the server at cfg.baseURL and returns the aggregated
// report. Requests shed (429) or refused while draining (503) are counted
// but not retried, so a drain mid-run terminates cleanly.
func loadgen(w io.Writer, cfg loadgenConfig) (*loadgenReport, error) {
	if cfg.clients < 1 || cfg.requests < 1 || cfg.batch < 1 {
		return nil, fmt.Errorf("loadgen: clients, requests and batch must be positive")
	}
	names := cfg.problems
	if len(names) == 0 {
		names = problems.TriSolveNames()
	}
	tmpl, err := loadgenTemplates(names)
	if err != nil {
		return nil, err
	}
	if !cfg.quiet {
		fmt.Fprintf(w, "loadgen: %d clients, %d requests, batch %d over %d problems -> %s\n",
			cfg.clients, cfg.requests, cfg.batch, len(tmpl), cfg.baseURL)
	}
	client := &http.Client{Timeout: cfg.timeout}

	// Warmup (untimed): register every factor with a full submission so
	// the timed run measures the recurring steady state — by-fingerprint
	// requests over warm plan and factor caches.
	if !cfg.fullMatrix {
		rng := rand.New(rand.NewSource(cfg.seed - 1))
		for _, t := range tmpl {
			req := t.req
			req.B64 = randomBatch(rng, 1, req.N)
			sr, status, msg, err := postSolveRequest(client, cfg.baseURL, &req)
			if err != nil {
				return nil, fmt.Errorf("loadgen: warmup: %w", err)
			}
			if status != http.StatusOK {
				return nil, fmt.Errorf("loadgen: warmup got status %d: %s", status, msg)
			}
			fp := sr.Fp
			t.fp.Store(&fp)
		}
	}
	before, beforeOK := fetchStats(client, cfg.baseURL)

	var next atomic.Int64
	var mu sync.Mutex
	rep := &loadgenReport{}
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(clientID int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(clientID)))
			for {
				reqID := int(next.Add(1)) - 1
				if reqID >= cfg.requests {
					return
				}
				t := tmpl[rng.Intn(len(tmpl))]
				b := randomBatch(rng, cfg.batch, t.req.N)
				t0 := time.Now()
				sr, status, msg, err := postTemplate(client, &cfg, t, b)
				lat := time.Since(t0)
				mu.Lock()
				switch {
				case err != nil:
					rep.failed++
					if rep.failMsg == "" {
						rep.failMsg = err.Error()
					}
				case status == http.StatusOK:
					if len(sr.X)+len(sr.X64) != cfg.batch {
						rep.failed++
						if rep.failMsg == "" {
							rep.failMsg = fmt.Sprintf("200 with %d solutions, want %d", len(sr.X)+len(sr.X64), cfg.batch)
						}
					} else {
						rep.ok++
						rep.latencies = append(rep.latencies, lat)
						if sr.Fused > 1 {
							rep.fused++
						}
					}
				case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
					rep.refused++
				default:
					rep.failed++
					if rep.failMsg == "" {
						rep.failMsg = fmt.Sprintf("status %d: %s", status, msg)
					}
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	rep.elapsed = time.Since(start)
	sort.Slice(rep.latencies, func(i, j int) bool { return rep.latencies[i] < rep.latencies[j] })

	if after, ok := fetchStats(client, cfg.baseURL); ok && beforeOK {
		rep.statsOK = true
		rep.cacheHitRate = after.CacheHitRate
		rep.shed = after.Shed - before.Shed
		rep.passes = after.Coalesce.Passes - before.Coalesce.Passes
		rep.serverRequests = after.Coalesce.Requests - before.Coalesce.Requests
		rep.plannerKind = after.Planner.Kind
		// Like the other server counters, report this run's delta — a
		// long-running server's lifetime decision counts would
		// misattribute earlier traffic to this run.
		rep.plannerCounts = make(map[string]uint64, len(after.Planner.Counts))
		for name, n := range after.Planner.Counts {
			if d := n - before.Planner.Counts[name]; d > 0 {
				rep.plannerCounts[name] = d
			}
		}
		if rep.serverRequests > 0 {
			rep.coalesceRate = float64(after.Coalesce.Fused-before.Coalesce.Fused) / float64(rep.serverRequests)
		}
	}
	return rep, nil
}

// randomBatch draws k right-hand sides of length n, packed for the wire
// (b_b64): recurring numeric traffic has no business re-parsing decimal
// floats on every request.
func randomBatch(rng *rand.Rand, k, n int) [][]byte {
	bs := make([][]byte, k)
	buf := make([]float64, n)
	for j := range bs {
		for i := range buf {
			buf[i] = rng.Float64()
		}
		bs[j] = server.PackFloats(buf)
	}
	return bs
}

// postSolveRequest posts one request and decodes a 200 reply; non-200
// statuses are returned with a nil response, the server's error message
// and no error (transport problems are the error path).
func postSolveRequest(client *http.Client, baseURL string, req *server.SolveRequest) (*server.SolveResponse, int, string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, 0, "", err
	}
	resp, err := client.Post(baseURL+"/v1/trisolve", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, 0, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode, e.Error, nil
	}
	var sr server.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, resp.StatusCode, "", err
	}
	return &sr, resp.StatusCode, "", nil
}

// postTemplate issues one solve for t: by fingerprint when one is known
// (falling back to a full submission if the server evicted the factor),
// otherwise shipping the full matrix and remembering the fingerprint.
func postTemplate(client *http.Client, cfg *loadgenConfig, t *solveTemplate, b [][]byte) (*server.SolveResponse, int, string, error) {
	if !cfg.fullMatrix {
		if fpp := t.fp.Load(); fpp != nil {
			req := server.SolveRequest{Fp: *fpp, Lower: t.req.Lower, B64: b}
			sr, status, msg, err := postSolveRequest(client, cfg.baseURL, &req)
			if err != nil || status != http.StatusNotFound {
				return sr, status, msg, err
			}
		}
	}
	req := t.req
	req.B64 = b
	sr, status, msg, err := postSolveRequest(client, cfg.baseURL, &req)
	if err == nil && status == http.StatusOK && !cfg.fullMatrix && sr.Fp != "" {
		fp := sr.Fp
		t.fp.Store(&fp)
	}
	return sr, status, msg, err
}

// printLoadgenReport renders the report in the serve/loadgen output style.
func printLoadgenReport(w io.Writer, rep *loadgenReport, batch int) {
	fmt.Fprintf(w, "  wall %8.1f ms, %8.0f solves/s (%d ok of which %d fused, %d refused, %d failed)\n",
		rep.elapsed.Seconds()*1e3, rep.throughput(batch), rep.ok, rep.fused, rep.refused, rep.failed)
	if len(rep.latencies) > 0 {
		fmt.Fprintf(w, "  latency: p50 %s  p90 %s  p99 %s  max %s\n",
			rep.percentile(0.50).Round(time.Microsecond),
			rep.percentile(0.90).Round(time.Microsecond),
			rep.percentile(0.99).Round(time.Microsecond),
			rep.latencies[len(rep.latencies)-1].Round(time.Microsecond))
	}
	if rep.statsOK {
		fmt.Fprintf(w, "  server: coalescing rate %.1f%% (%d requests fused into %d passes), cache hit rate %.1f%%, %d shed\n",
			100*rep.coalesceRate, rep.serverRequests, rep.passes, 100*rep.cacheHitRate, rep.shed)
		if len(rep.plannerCounts) > 0 {
			fmt.Fprintf(w, "  planner: kind=%s decisions: %s\n", rep.plannerKind, formatPlannerCounts(rep.plannerCounts))
		}
	}
}

// formatPlannerCounts renders per-strategy plan-build counts sorted by
// strategy name, e.g. "pooled:5 sequential:2".
func formatPlannerCounts(counts map[string]uint64) string {
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s:%d", name, counts[name]))
	}
	return strings.Join(parts, " ")
}
