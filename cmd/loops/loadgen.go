package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"doconsider/internal/obs"
	"doconsider/internal/problems"
	"doconsider/internal/server"
	"doconsider/internal/sparse"
	"doconsider/internal/synthetic"
)

// Wire formats the load generator can speak. JSON packs the RHS as
// base64 (b_b64); binary ships the whole request as a zero-copy frame
// (Content-Type application/x-doconsider-frame) that the server decodes
// by slicing into pooled arena memory.
const (
	wireJSON   = "json"
	wireBinary = "binary"
)

// loadgenConfig parameterizes the concurrent load generator: a pool of
// client goroutines posts triangular-solve requests to a running server
// over the recurring problem suite and reports throughput, latency
// percentiles and the server-side coalescing and cache rates.
type loadgenConfig struct {
	baseURL    string        // e.g. http://127.0.0.1:8080
	clients    int           // concurrent client goroutines
	requests   int           // total requests across all clients
	batch      int           // right-hand sides per request
	seed       int64         // base RNG seed; client i uses seed+i
	timeout    time.Duration // per-request client timeout (0 = none)
	problems   []string      // problem names; nil = the trisolve suite
	fullMatrix bool          // ship the full CSR every request instead of by-fingerprint reuse
	driftRate  float64       // probability a request structurally drifts its problem
	driftEdits int           // row edits per drift step
	wire       string        // wireJSON (default when empty) or wireBinary
	trace      bool          // fetch /v1/trace after the run and report per-stage latency
	quiet      bool          // suppress the progress header
	tenants    int           // adversarial multi-tenant mix: tenant 0 latency-class, rest batch (0 disables)
	tag        tenantTag     // per-client tenant identity; set on goroutine-local copies, not shared
}

// tenantTag is the per-client tenant identity in -tenants mode. The zero
// tag means untagged traffic (the server files it under its default
// tenant), which keeps single-tenant runs byte-identical to before.
type tenantTag struct {
	name  string
	class string // "latency" or "batch"; "" defaults to batch server-side
}

// tenantTagFor maps a client to its tenant in the adversarial mix:
// clients are dealt round-robin across cfg.tenants tenants, tenant 0 is
// the lone latency-class tenant and the rest flood as batch class.
func (cfg *loadgenConfig) tenantTagFor(clientID int) tenantTag {
	if cfg.tenants < 2 {
		return tenantTag{}
	}
	ti := clientID % cfg.tenants
	if ti == 0 {
		return tenantTag{name: "lat-0", class: "latency"}
	}
	return tenantTag{name: fmt.Sprintf("batch-%d", ti), class: "batch"}
}

// headerValue renders the tag in X-Doconsider-Tenant form.
func (tag tenantTag) headerValue() string {
	if tag.class == "" {
		return tag.name
	}
	return tag.name + ";class=" + tag.class
}

// loadgenReport aggregates one load-generation run.
type loadgenReport struct {
	elapsed        time.Duration
	ok             int
	refused        int    // 429 shed + 503 draining
	failed         int    // transport errors and unexpected statuses
	failMsg        string // sample failure, so "N failed" is debuggable
	fused          int    // OK responses that shared an executor pass
	drifted        int    // OK responses to base_fp+edits drift requests
	driftFell      int    // drift requests that fell back to a full ship (404)
	latencies      []time.Duration
	statsOK        bool
	coalesceRate   float64
	cacheHitRate   float64
	passes, shed   uint64
	serverRequests uint64
	repairs        uint64                      // plan misses served by delta repair
	repairFalls    uint64                      // repair attempts that rebuilt instead
	plannerKind    string                      // server's configured kind ("auto" = adaptive)
	plannerCounts  map[string]uint64           // plan builds by chosen strategy
	superPlans     uint64                      // fused plan builds this run
	superRows      uint64                      // rows those plans cover
	superFusedRows uint64                      // rows inside width >= 2 supernodes
	superMaxWidth  int                         // widest supernode the cache has seen
	stageMs        map[string][]float64        // per-stage millisecond samples from /v1/trace (-trace)
	traceDropped   uint64                      // traces the server's ring dropped under contention
	perTenant      map[string]*tenantRunReport // -tenants mode: client-side per-tenant breakdown
	tenantStats    []server.TenantStats        // server-side per-tenant snapshot after the run
}

// tenantRunReport is one tenant's client-side slice of the run.
type tenantRunReport struct {
	class     string
	ok        int
	refused   int
	failed    int
	latencies []time.Duration
}

func pctDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// throughput returns completed solves per second (requests x batch).
func (r *loadgenReport) throughput(batch int) float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.ok*batch) / r.elapsed.Seconds()
}

// percentile returns the q-quantile of the collected latencies.
func (r *loadgenReport) percentile(q float64) time.Duration {
	if len(r.latencies) == 0 {
		return 0
	}
	i := int(q*float64(len(r.latencies))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(r.latencies) {
		i = len(r.latencies) - 1
	}
	return r.latencies[i]
}

// solveTemplate is the per-problem state of the load generator. fp holds
// the server-assigned content fingerprint once a full submission has
// registered the factor; subsequent requests reference it instead of
// re-shipping the matrix (shared across all clients — real tenants
// recurring on one problem would do the same). Under -drift-rate the
// factor itself evolves: drift steps edit cur's nonzero pattern and ship
// only base_fp + edits, exactly like a refactorization with a modified
// drop pattern. mu serializes drift steps per problem; fingerprint reads
// on the recurring path stay lock-free.
type solveTemplate struct {
	fp atomic.Pointer[string]

	mu  sync.Mutex
	cur *sparse.CSR
	wf  []int32 // wavefronts of cur; invariant under level-compatible drift
}

// fullRequest builds a whole-matrix submission for the template's
// current factor.
func (t *solveTemplate) fullRequest() server.SolveRequest {
	t.mu.Lock()
	defer t.mu.Unlock()
	return fullRequestFor(t.cur)
}

func fullRequestFor(cur *sparse.CSR) server.SolveRequest {
	lower := true
	return server.SolveRequest{
		N: cur.N, RowPtr: cur.RowPtr, ColIdx: cur.ColIdx, Val: cur.Val, Lower: &lower,
	}
}

func (t *solveTemplate) n() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cur.N
}

func loadgenTemplates(names []string) ([]*solveTemplate, error) {
	tmpl := make([]*solveTemplate, len(names))
	for i, name := range names {
		p, err := problems.Get(name)
		if err != nil {
			return nil, err
		}
		tmpl[i] = &solveTemplate{cur: p.L, wf: p.Wf}
	}
	return tmpl, nil
}

// fetchStats reads /v1/stats; failures are soft (the server may already
// be draining when the run ends).
func fetchStats(client *http.Client, baseURL string) (server.StatsResponse, bool) {
	var st server.StatsResponse
	resp, err := client.Get(baseURL + "/v1/stats")
	if err != nil {
		return st, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, false
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, false
	}
	return st, true
}

// fetchTraces pulls up to limit completed traces from the server's ring
// and buckets their per-stage millisecond samples by stage name.
// Failures are soft, like fetchStats.
func fetchTraces(client *http.Client, baseURL string, limit int) (map[string][]float64, uint64, bool) {
	resp, err := client.Get(fmt.Sprintf("%s/v1/trace?limit=%d", baseURL, limit))
	if err != nil {
		return nil, 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, false
	}
	var tl server.TraceListResponse
	if err := json.NewDecoder(resp.Body).Decode(&tl); err != nil {
		return nil, 0, false
	}
	stages := make(map[string][]float64)
	for _, tr := range tl.Traces {
		for stage, ms := range tr.Stages {
			stages[stage] = append(stages[stage], ms)
		}
	}
	return stages, tl.Dropped, true
}

// loadgen drives the server at cfg.baseURL and returns the aggregated
// report. Requests shed (429) or refused while draining (503) are counted
// but not retried, so a drain mid-run terminates cleanly.
func loadgen(w io.Writer, cfg loadgenConfig) (*loadgenReport, error) {
	if cfg.clients < 1 || cfg.requests < 1 || cfg.batch < 1 {
		return nil, fmt.Errorf("loadgen: clients, requests and batch must be positive")
	}
	switch cfg.wire {
	case "", wireJSON, wireBinary:
	default:
		return nil, fmt.Errorf("loadgen: unknown wire format %q (want %s or %s)", cfg.wire, wireJSON, wireBinary)
	}
	names := cfg.problems
	if len(names) == 0 {
		names = problems.TriSolveNames()
	}
	tmpl, err := loadgenTemplates(names)
	if err != nil {
		return nil, err
	}
	if cfg.tenants != 0 && cfg.tenants < 2 {
		return nil, fmt.Errorf("loadgen: -tenants needs at least 2 tenants (1 latency + >=1 batch), got %d", cfg.tenants)
	}
	if !cfg.quiet {
		wire := cfg.wire
		if wire == "" {
			wire = wireJSON
		}
		fmt.Fprintf(w, "loadgen: %d clients, %d requests, batch %d over %d problems (%s wire) -> %s\n",
			cfg.clients, cfg.requests, cfg.batch, len(tmpl), wire, cfg.baseURL)
		if cfg.tenants >= 2 {
			fmt.Fprintf(w, "loadgen: adversarial tenant mix: 1 latency tenant (lat-0) vs %d batch tenants\n", cfg.tenants-1)
		}
	}
	client := &http.Client{Timeout: cfg.timeout}

	// Warmup (untimed): register every factor with a full submission so
	// the timed run measures the recurring steady state — by-fingerprint
	// requests over warm plan and factor caches.
	if !cfg.fullMatrix {
		rng := rand.New(rand.NewSource(cfg.seed - 1))
		for _, t := range tmpl {
			req := t.fullRequest()
			req.B = randomBatch(rng, 1, req.N)
			sr, status, msg, err := postSolveRequest(client, &cfg, &req)
			if err != nil {
				return nil, fmt.Errorf("loadgen: warmup: %w", err)
			}
			if status != http.StatusOK {
				return nil, fmt.Errorf("loadgen: warmup got status %d: %s", status, msg)
			}
			fp := sr.Fp
			t.fp.Store(&fp)
		}
	}
	before, beforeOK := fetchStats(client, cfg.baseURL)

	var next atomic.Int64
	var mu sync.Mutex
	rep := &loadgenReport{}
	if cfg.tenants >= 2 {
		rep.perTenant = make(map[string]*tenantRunReport)
	}
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(clientID int) {
			defer wg.Done()
			// Goroutine-local copy: the tag rides in the config so the
			// poster call chain (template -> request -> wire) stays intact.
			ccfg := cfg
			ccfg.tag = cfg.tenantTagFor(clientID)
			rng := rand.New(rand.NewSource(cfg.seed + int64(clientID)))
			for {
				reqID := int(next.Add(1)) - 1
				if reqID >= cfg.requests {
					return
				}
				t := tmpl[rng.Intn(len(tmpl))]
				b := randomBatch(rng, cfg.batch, t.n())
				drift := cfg.driftRate > 0 && cfg.driftEdits > 0 && !cfg.fullMatrix &&
					rng.Float64() < cfg.driftRate
				t0 := time.Now()
				var sr *server.SolveResponse
				var status int
				var msg string
				var err error
				attempted, fellBack := false, false
				if drift {
					sr, status, msg, attempted, fellBack, err = driftTemplate(client, &ccfg, t, b, rng)
				} else {
					sr, status, msg, err = postTemplate(client, &ccfg, t, b)
				}
				lat := time.Since(t0)
				mu.Lock()
				var trep *tenantRunReport
				if rep.perTenant != nil {
					trep = rep.perTenant[ccfg.tag.name]
					if trep == nil {
						trep = &tenantRunReport{class: ccfg.tag.class}
						rep.perTenant[ccfg.tag.name] = trep
					}
				}
				switch {
				case err != nil:
					rep.failed++
					if trep != nil {
						trep.failed++
					}
					if rep.failMsg == "" {
						rep.failMsg = err.Error()
					}
				case status == http.StatusOK:
					if len(sr.X)+len(sr.X64) != cfg.batch {
						rep.failed++
						if trep != nil {
							trep.failed++
						}
						if rep.failMsg == "" {
							rep.failMsg = fmt.Sprintf("200 with %d solutions, want %d", len(sr.X)+len(sr.X64), cfg.batch)
						}
					} else {
						rep.ok++
						rep.latencies = append(rep.latencies, lat)
						if trep != nil {
							trep.ok++
							trep.latencies = append(trep.latencies, lat)
						}
						if sr.Fused > 1 {
							rep.fused++
						}
						if attempted {
							rep.drifted++
							if fellBack {
								rep.driftFell++
							}
						}
					}
				case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
					rep.refused++
					if trep != nil {
						trep.refused++
					}
				default:
					rep.failed++
					if trep != nil {
						trep.failed++
					}
					if rep.failMsg == "" {
						rep.failMsg = fmt.Sprintf("status %d: %s", status, msg)
					}
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	rep.elapsed = time.Since(start)
	sort.Slice(rep.latencies, func(i, j int) bool { return rep.latencies[i] < rep.latencies[j] })
	for _, trep := range rep.perTenant {
		lat := trep.latencies
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	}

	if after, ok := fetchStats(client, cfg.baseURL); ok && beforeOK {
		rep.statsOK = true
		rep.tenantStats = after.Tenants
		rep.cacheHitRate = after.CacheHitRate
		rep.shed = after.Shed - before.Shed
		rep.passes = after.Coalesce.Passes - before.Coalesce.Passes
		rep.serverRequests = after.Coalesce.Requests - before.Coalesce.Requests
		rep.repairs = after.Delta.Repairs - before.Delta.Repairs
		rep.repairFalls = after.Delta.Fallbacks - before.Delta.Fallbacks
		rep.plannerKind = after.Planner.Kind
		// Like the other server counters, report this run's delta — a
		// long-running server's lifetime decision counts would
		// misattribute earlier traffic to this run.
		rep.plannerCounts = make(map[string]uint64, len(after.Planner.Counts))
		for name, n := range after.Planner.Counts {
			if d := n - before.Planner.Counts[name]; d > 0 {
				rep.plannerCounts[name] = d
			}
		}
		if rep.serverRequests > 0 {
			rep.coalesceRate = float64(after.Coalesce.Fused-before.Coalesce.Fused) / float64(rep.serverRequests)
		}
		rep.superPlans = after.Supernode.FusedPlans - before.Supernode.FusedPlans
		rep.superRows = after.Supernode.Rows - before.Supernode.Rows
		rep.superFusedRows = after.Supernode.FusedRows - before.Supernode.FusedRows
		rep.superMaxWidth = after.Supernode.MaxWidth
	}
	if cfg.trace {
		if stages, dropped, ok := fetchTraces(client, cfg.baseURL, cfg.requests); ok {
			rep.stageMs = stages
			rep.traceDropped = dropped
		}
	}
	return rep, nil
}

// randomBatch draws k right-hand sides of length n. Requests carry them
// in B; the JSON poster packs them to b_b64 at encode time (recurring
// numeric traffic has no business re-parsing decimal floats on every
// request) and the binary poster writes them straight into the frame.
func randomBatch(rng *rand.Rand, k, n int) [][]float64 {
	bs := make([][]float64, k)
	for j := range bs {
		row := make([]float64, n)
		for i := range row {
			row[i] = rng.Float64()
		}
		bs[j] = row
	}
	return bs
}

// postSolveRequest posts one request over the configured wire format
// and decodes a 200 reply; non-200 statuses are returned with a nil
// response, the server's error message and no error (transport problems
// are the error path).
func postSolveRequest(client *http.Client, cfg *loadgenConfig, req *server.SolveRequest) (*server.SolveResponse, int, string, error) {
	if cfg.tag.name != "" {
		req.Tenant, req.Class = cfg.tag.name, cfg.tag.class
	}
	if cfg.wire == wireBinary {
		return postSolveFrame(client, cfg, req)
	}
	if len(req.B) > 0 {
		req.B64 = packBatch(req.B)
		req.B = nil
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, 0, "", err
	}
	hreq, err := http.NewRequest("POST", cfg.baseURL+"/v1/trisolve", bytes.NewReader(body))
	if err != nil {
		return nil, 0, "", err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if cfg.tag.name != "" {
		hreq.Header.Set(server.TenantHeader, cfg.tag.headerValue())
	}
	resp, err := client.Do(hreq)
	if err != nil {
		return nil, 0, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode, e.Error, nil
	}
	var sr server.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, resp.StatusCode, "", err
	}
	return &sr, resp.StatusCode, "", nil
}

func packBatch(b [][]float64) [][]byte {
	packed := make([][]byte, len(b))
	for j, row := range b {
		packed[j] = server.PackFloats(row)
	}
	return packed
}

// postSolveFrame posts one request as a binary frame and decodes the
// frame reply into the JSON response shape, so the rest of the load
// generator is wire-agnostic. Errors raised before the server's frame
// handler takes over (admission 429, drain 503) arrive as JSON bodies;
// the Content-Type header says which decoder applies. The tenant rides
// twice on purpose: the header drives admission (read before the body)
// and the frame's tenant section attributes the solve after decode.
func postSolveFrame(client *http.Client, cfg *loadgenConfig, req *server.SolveRequest) (*server.SolveResponse, int, string, error) {
	body, err := server.EncodeRequestFrame(req)
	if err != nil {
		return nil, 0, "", err
	}
	hreq, err := http.NewRequest("POST", cfg.baseURL+"/v1/trisolve", bytes.NewReader(body))
	if err != nil {
		return nil, 0, "", err
	}
	hreq.Header.Set("Content-Type", server.FrameContentType)
	if cfg.tag.name != "" {
		hreq.Header.Set(server.TenantHeader, cfg.tag.headerValue())
	}
	resp, err := client.Do(hreq)
	if err != nil {
		return nil, 0, "", err
	}
	defer resp.Body.Close()
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), server.FrameContentType) {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode, e.Error, nil
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, resp.StatusCode, "", err
	}
	wr, err := server.DecodeResponseFrame(raw)
	if err != nil {
		return nil, resp.StatusCode, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode, wr.ErrMsg, nil
	}
	return &server.SolveResponse{
		X: wr.X, Fp: wr.Fp, Fused: wr.Fused, Width: wr.Width,
		Strategy: wr.Strategy, Executed: wr.Executed,
	}, resp.StatusCode, "", nil
}

// postTemplate issues one solve for t: by fingerprint when one is known
// (falling back to a full submission if the server evicted the factor),
// otherwise shipping the full matrix and remembering the fingerprint.
func postTemplate(client *http.Client, cfg *loadgenConfig, t *solveTemplate, b [][]float64) (*server.SolveResponse, int, string, error) {
	lower := true
	if !cfg.fullMatrix {
		if fpp := t.fp.Load(); fpp != nil {
			req := server.SolveRequest{Fp: *fpp, Lower: &lower, B: b}
			sr, status, msg, err := postSolveRequest(client, cfg, &req)
			if err != nil || status != http.StatusNotFound {
				return sr, status, msg, err
			}
		}
	}
	t.mu.Lock()
	cur := t.cur
	t.mu.Unlock()
	req := fullRequestFor(cur)
	req.B = b
	sr, status, msg, err := postSolveRequest(client, cfg, &req)
	if err == nil && status == http.StatusOK && !cfg.fullMatrix && sr.Fp != "" {
		// Commit only if no drift replaced the factor while we were on
		// the wire — the stored fingerprint must always correspond to cur.
		t.mu.Lock()
		if t.cur == cur {
			fp := sr.Fp
			t.fp.Store(&fp)
		}
		t.mu.Unlock()
	}
	return sr, status, msg, err
}

// driftTemplate evolves the template's factor by a structural edit set
// and solves against the drifted structure, shipping only base_fp +
// edits — the wire form of a refactorization with a modified drop
// pattern. attempted reports whether a drift request was actually sent
// (the degenerate paths fall through to a plain recurring request). If
// the server no longer holds the base (404) the full drifted matrix is
// shipped instead (fellBack). The template lock is held only to
// snapshot and to commit, never across the network round trip:
// concurrent drifts of one problem race freely and the loser's local
// update is simply dropped (the server answered it correctly either
// way), so recurring-path readers block for pointer copies at most.
func driftTemplate(client *http.Client, cfg *loadgenConfig, t *solveTemplate, b [][]float64, rng *rand.Rand) (sr *server.SolveResponse, status int, msg string, attempted, fellBack bool, err error) {
	lower := true
	t.mu.Lock()
	// fp must be read in the same critical section as cur: a concurrent
	// drift commit replaces both together, and edits generated from an
	// old cur against a newer base fingerprint would be rejected by the
	// server (e.g. deleting a column the other drift already removed).
	cur, wf, fpp := t.cur, t.wf, t.fp.Load()
	t.mu.Unlock()
	edits := synthetic.DriftLower(rng, cur, wf, cfg.driftEdits, 0.3)
	if len(edits) == 0 || fpp == nil {
		// The structure admits no drift (or was never registered): plain
		// recurring request.
		sr, status, msg, err = postTemplate(client, cfg, t, b)
		return sr, status, msg, false, false, err
	}
	edited, aerr := cur.ApplyRowEdits(edits)
	if aerr != nil {
		return nil, 0, "", false, false, aerr
	}
	req := server.SolveRequest{BaseFp: *fpp, Edits: edits, Lower: &lower, B: b}
	sr, status, msg, err = postSolveRequest(client, cfg, &req)
	if err == nil && status == http.StatusNotFound {
		// Base evicted server-side: ship the drifted matrix whole.
		fellBack = true
		full := server.SolveRequest{
			N: edited.N, RowPtr: edited.RowPtr, ColIdx: edited.ColIdx, Val: edited.Val,
			Lower: &lower, B: b,
		}
		sr, status, msg, err = postSolveRequest(client, cfg, &full)
	}
	if err == nil && status == http.StatusOK && sr.Fp != "" {
		t.mu.Lock()
		if t.cur == cur { // nobody drifted the template while we were on the wire
			t.cur = edited // wf is invariant under level-compatible drift
			fp := sr.Fp
			t.fp.Store(&fp)
		}
		t.mu.Unlock()
	}
	return sr, status, msg, true, fellBack, err
}

// printLoadgenReport renders the report in the serve/loadgen output style.
func printLoadgenReport(w io.Writer, rep *loadgenReport, batch int) {
	fmt.Fprintf(w, "  wall %8.1f ms, %8.0f solves/s (%d ok of which %d fused, %d refused, %d failed)\n",
		rep.elapsed.Seconds()*1e3, rep.throughput(batch), rep.ok, rep.fused, rep.refused, rep.failed)
	if len(rep.latencies) > 0 {
		fmt.Fprintf(w, "  latency: p50 %s  p90 %s  p99 %s  max %s\n",
			rep.percentile(0.50).Round(time.Microsecond),
			rep.percentile(0.90).Round(time.Microsecond),
			rep.percentile(0.99).Round(time.Microsecond),
			rep.latencies[len(rep.latencies)-1].Round(time.Microsecond))
	}
	if rep.drifted > 0 {
		fmt.Fprintf(w, "  drift: %d drifted requests (%d fell back to a full ship)\n", rep.drifted, rep.driftFell)
	}
	if rep.statsOK {
		fmt.Fprintf(w, "  server: coalescing rate %.1f%% (%d requests fused into %d passes), cache hit rate %.1f%%, %d shed\n",
			100*rep.coalesceRate, rep.serverRequests, rep.passes, 100*rep.cacheHitRate, rep.shed)
		if rep.repairs+rep.repairFalls > 0 {
			fmt.Fprintf(w, "  delta: %d plan misses repaired from a resident ancestor, %d rebuilt (cone/planner fallback)\n",
				rep.repairs, rep.repairFalls)
		}
		if len(rep.plannerCounts) > 0 {
			fmt.Fprintf(w, "  planner: kind=%s decisions: %s\n", rep.plannerKind, formatPlannerCounts(rep.plannerCounts))
		}
		if rep.superPlans > 0 {
			fmt.Fprintf(w, "  supernode: %d fused plans (%d of %d rows fused, max width %d)\n",
				rep.superPlans, rep.superFusedRows, rep.superRows, rep.superMaxWidth)
		}
	}
	printTenantTable(w, rep)
	printStageTable(w, rep)
}

// printTenantTable renders the -tenants adversarial-mix breakdown: the
// client-side view (ok/refused and latency percentiles per tenant) plus
// the server's own per-tenant shed counts when /v1/stats was reachable.
func printTenantTable(w io.Writer, rep *loadgenReport) {
	if len(rep.perTenant) == 0 {
		return
	}
	names := make([]string, 0, len(rep.perTenant))
	for name := range rep.perTenant {
		names = append(names, name)
	}
	sort.Strings(names)
	shed := make(map[string]uint64, len(rep.tenantStats))
	for _, ts := range rep.tenantStats {
		shed[ts.Name] = ts.Shed
	}
	fmt.Fprintf(w, "  tenants:\n")
	fmt.Fprintf(w, "    %-10s %-8s %6s %8s %8s %10s %10s\n", "tenant", "class", "ok", "refused", "failed", "p50", "p99")
	for _, name := range names {
		t := rep.perTenant[name]
		shedNote := ""
		if n, known := shed[name]; known && rep.statsOK {
			shedNote = fmt.Sprintf("  (server shed %d)", n)
		}
		fmt.Fprintf(w, "    %-10s %-8s %6d %8d %8d %10s %10s%s\n",
			name, t.class, t.ok, t.refused, t.failed,
			pctDur(t.latencies, 0.50).Round(time.Microsecond),
			pctDur(t.latencies, 0.99).Round(time.Microsecond), shedNote)
	}
}

// printStageTable renders the per-stage server-side latency percentiles
// collected from /v1/trace under -trace, in pipeline order.
func printStageTable(w io.Writer, rep *loadgenReport) {
	if len(rep.stageMs) == 0 {
		return
	}
	fmt.Fprintf(w, "  stages (server-side, from /v1/trace):\n")
	fmt.Fprintf(w, "    %-10s %10s %10s %10s %10s\n", "stage", "p50", "p90", "p99", "max")
	for i := 0; i < obs.NumStages; i++ {
		name := obs.Stage(i).String()
		ms := rep.stageMs[name]
		if len(ms) == 0 {
			continue
		}
		sort.Float64s(ms)
		fmt.Fprintf(w, "    %-10s %8.3fms %8.3fms %8.3fms %8.3fms\n", name,
			pctMs(ms, 0.50), pctMs(ms, 0.90), pctMs(ms, 0.99), ms[len(ms)-1])
	}
	if rep.traceDropped > 0 {
		fmt.Fprintf(w, "    (%d traces dropped by the server's ring under contention)\n", rep.traceDropped)
	}
}

// pctMs returns the q-quantile of an ascending-sorted sample, mirroring
// loadgenReport.percentile for raw milliseconds.
func pctMs(sorted []float64, q float64) float64 {
	i := int(q*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// formatPlannerCounts renders per-strategy plan-build counts sorted by
// strategy name, e.g. "pooled:5 sequential:2".
func formatPlannerCounts(counts map[string]uint64) string {
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s:%d", name, counts[name]))
	}
	return strings.Join(parts, " ")
}
