package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"doconsider/internal/router"
)

// routerCmdConfig parameterizes the `loops router` network mode: a
// stateless front door over already-running `loops server` replicas.
type routerCmdConfig struct {
	addr      string
	backends  []string
	vnodes    int
	warmLimit int
	drainWait time.Duration
}

// runRouter is the `loops router` experiment: consistent-hash solve
// traffic across -backends until interrupted. Replicas can join and
// leave at runtime via POST /v1/cluster/join and /v1/cluster/leave.
func runRouter(w io.Writer, cfg routerCmdConfig, stop <-chan struct{}) error {
	rt, err := router.New(router.Config{
		Backends:  cfg.backends,
		VNodes:    cfg.vnodes,
		WarmLimit: cfg.warmLimit,
	})
	if err != nil {
		return err
	}
	if err := rt.Start(cfg.addr); err != nil {
		return err
	}
	fmt.Fprintf(w, "router: listening on %s over %d backends (%s)\n",
		rt.Addr(), len(cfg.backends), strings.Join(cfg.backends, ", "))
	fmt.Fprintf(w, "router: POST /v1/trisolve /v1/cluster/join /v1/cluster/leave, GET /v1/stats /healthz /metrics\n")

	waitForStop(stop)

	ctx, cancel := context.WithTimeout(context.Background(), cfg.drainWait)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		return fmt.Errorf("router: drain: %w", err)
	}
	printRouterStats(w, rt.Stats())
	return nil
}

// clusterCmdConfig parameterizes the `loops cluster` mode: N in-process
// replicas behind a front door on one address.
type clusterCmdConfig struct {
	addr     string
	replicas int
	server   serverConfig
}

// runCluster is the `loops cluster` experiment: a self-contained
// multi-replica deployment (replica servers on loopback ports, front
// door on -addr) serving until interrupted.
func runCluster(w io.Writer, cfg clusterCmdConfig, stop <-chan struct{}) error {
	c, err := router.NewCluster(cfg.replicas, cfg.server.serverOptions(), router.Config{}, cfg.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "cluster: front door on %s over %d replicas (%s)\n",
		c.Router().Addr(), cfg.replicas, strings.Join(c.Addrs(), ", "))
	fmt.Fprintf(w, "cluster: POST /v1/trisolve, GET /v1/stats /healthz /metrics (router-level)\n")

	waitForStop(stop)

	ctx, cancel := context.WithTimeout(context.Background(), cfg.server.drainWait)
	defer cancel()
	st := c.Router().Stats()
	if err := c.Close(ctx); err != nil {
		return fmt.Errorf("cluster: drain: %w", err)
	}
	printRouterStats(w, st)
	return nil
}

// waitForStop blocks on the test hook when given, else on SIGINT/SIGTERM.
func waitForStop(stop <-chan struct{}) {
	if stop != nil {
		<-stop
		return
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	<-sig
}

// printRouterStats renders the front door's per-backend breakdown and
// rebalance history in the loadgen report style.
func printRouterStats(w io.Writer, st router.StatsResponse) {
	fmt.Fprintf(w, "  router: %d requests (%d bad, %d unroutable, %d retries, %d failures), %d affinity pins (%d hits)\n",
		st.Requests, st.BadRequests, st.NoBackend, st.Retries, st.Failures, st.AffinitySize, st.AffinityHits)
	for _, b := range st.Backends {
		state := "healthy"
		if !b.Healthy {
			state = "unhealthy"
		}
		fmt.Fprintf(w, "    backend %-21s %-9s routed %6d  retried %4d  failed %4d\n",
			b.Addr, state, b.Routed, b.Retried, b.Failed)
	}
	for _, ev := range st.Rebalances {
		fmt.Fprintf(w, "    rebalance %-5s %-21s moved %3d  warmed %3d  (%.1f ms)\n",
			ev.Kind, ev.Addr, ev.Moved, ev.Warmed, ev.Ms)
	}
}
