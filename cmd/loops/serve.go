package main

import (
	"context"
	"fmt"
	"io"
	"time"

	"doconsider/internal/executor"
	"doconsider/internal/server"
)

// serveConfig parameterizes the repeated-workload (serving) demo: it
// stands up the real network server (internal/server) on a loopback
// port, drives it with the in-process load generator, and reports the
// end-to-end amortization — shared inspector runs via the plan cache and
// shared executor passes via the request coalescer.
type serveConfig struct {
	procs      int           // processors per plan
	clients    int           // concurrent loadgen clients
	requests   int           // total solve requests across all clients
	batch      int           // right-hand sides per request
	cacheCap   int           // plan-cache capacity (skeletons)
	window     time.Duration // coalescing window
	width      int           // max RHS per fused pass
	seed       int64         // loadgen RNG base seed (reproducible runs)
	maxBatch   int           // server-side cap on RHS per request
	compare    bool          // also run with coalescing disabled
	kind       string        // executor kind registry name, or "auto" for adaptive planning
	driftRate  float64       // probability a request structurally drifts its problem
	driftEdits int           // row edits per drift step
}

// serve is the `loops serve` experiment, demoted to a thin driver over
// the serving subsystem: the same server package that backs `loops
// server` runs in-process on 127.0.0.1:0 and the same loadgen that backs
// `loops loadgen` drives it. With -compare it repeats the run with the
// coalescer disabled (-coalesce-window 0) and reports the speedup.
func serve(w io.Writer, cfg serveConfig) error {
	if cfg.clients < 1 || cfg.requests < 1 || cfg.batch < 1 {
		return fmt.Errorf("serve: clients, requests and batch must be positive")
	}
	fmt.Fprintf(w, "serve: %d clients, %d requests, batch %d, %d procs/plan, %s executor, cache %d, window %s, seed %d\n",
		cfg.clients, cfg.requests, cfg.batch, cfg.procs, cfg.kind, cfg.cacheCap, cfg.window, cfg.seed)
	if cfg.driftRate > 0 && cfg.driftEdits > 0 {
		fmt.Fprintf(w, "serve: drifting workload: rate %.2f, %d row edits per drift (base_fp+edits requests)\n",
			cfg.driftRate, cfg.driftEdits)
	}

	rep, stats, err := runServePass(w, cfg, cfg.window)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  coalesced:      %8.1f ms wall, %8.0f solves/s (%d requests x %d RHS)\n",
		rep.elapsed.Seconds()*1e3, rep.throughput(cfg.batch), cfg.requests, cfg.batch)
	printLoadgenReport(w, rep, cfg.batch)
	pc := stats.PlanCache
	fmt.Fprintf(w, "  plan cache:     %d hits, %d coalesced, %d misses, %d evictions (hit rate %.1f%%, %d resident)\n",
		pc.Hits, pc.Coalesced, pc.Misses, pc.Evictions, 100*pc.HitRate(), pc.Resident)
	fmt.Fprintf(w, "  exec coalescer: %d passes for %d requests (%d fused, rate %.1f%%, widest %d)\n",
		stats.Coalesce.Passes, stats.Coalesce.Requests, stats.Coalesce.Fused,
		100*stats.Coalesce.Rate, stats.Coalesce.MaxFused)
	if stats.Delta.Repairs+stats.Delta.Fallbacks > 0 {
		fmt.Fprintf(w, "  delta repair:   %d plan misses repaired from a resident ancestor, %d rebuilt, %d rows releveled\n",
			stats.Delta.Repairs, stats.Delta.Fallbacks, stats.Delta.ConeRows)
	}
	if len(stats.Planner.Counts) > 0 {
		fmt.Fprintf(w, "  planner:        kind=%s decisions: %s\n",
			stats.Planner.Kind, formatPlannerCounts(stats.Planner.Counts))
	}
	if sn := stats.Supernode; sn.FusedPlans > 0 {
		fmt.Fprintf(w, "  supernode:      %d fused plans: %d nodes over %d rows (%.1f%% fused, max width %d)\n",
			sn.FusedPlans, sn.Nodes, sn.Rows, 100*sn.FusedFrac, sn.MaxWidth)
	}

	if cfg.compare {
		base, _, err := runServePass(w, cfg, 0)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  uncoalesced:    %8.1f ms wall, %8.0f solves/s (-coalesce-window 0 baseline)\n",
			base.elapsed.Seconds()*1e3, base.throughput(cfg.batch))
		if rep.elapsed > 0 {
			fmt.Fprintf(w, "  speedup:        %.2fx\n", base.elapsed.Seconds()/rep.elapsed.Seconds())
		}
	}
	return nil
}

// runServePass stands up one in-process server with the given coalescing
// window, drives it with loadgen, drains it, and returns the loadgen
// report plus the server's final stats snapshot.
func runServePass(w io.Writer, cfg serveConfig, window time.Duration) (*loadgenReport, server.StatsResponse, error) {
	s, err := server.New(server.Config{
		Procs:    cfg.procs,
		Kind:     cfg.kind,
		CacheCap: cfg.cacheCap,
		MaxBatch: cfg.maxBatch,
		Coalesce: server.CoalesceConfig{Window: window, Width: cfg.width},
	})
	if err != nil {
		return nil, server.StatsResponse{}, err
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		return nil, server.StatsResponse{}, err
	}
	rep, err := loadgen(w, loadgenConfig{
		baseURL:    "http://" + s.Addr(),
		clients:    cfg.clients,
		requests:   cfg.requests,
		batch:      cfg.batch,
		seed:       cfg.seed,
		driftRate:  cfg.driftRate,
		driftEdits: cfg.driftEdits,
		quiet:      true,
	})
	stats := s.Stats()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if serr := s.Shutdown(ctx); err == nil && serr != nil {
		err = fmt.Errorf("serve: drain: %w", serr)
	}
	if err != nil {
		return nil, server.StatsResponse{}, err
	}
	if rep.failed > 0 {
		return nil, server.StatsResponse{}, fmt.Errorf("serve: %d requests failed (e.g. %s)", rep.failed, rep.failMsg)
	}
	return rep, stats, nil
}

// parseKind validates an executor kind registry name; "auto" selects
// adaptive planning (the planner picks the strategy per structure).
func parseKind(name string) (string, error) {
	if name == server.KindAuto {
		return name, nil
	}
	if _, err := executor.KindByName(name); err != nil {
		return "", err
	}
	return name, nil
}
