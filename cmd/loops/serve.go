package main

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"doconsider/internal/executor"
	"doconsider/internal/problems"
	"doconsider/internal/trisolve"
)

// serveConfig parameterizes the repeated-workload (serving) mode: a pool
// of client goroutines issues triangular-solve requests over the problem
// suite, sharing one plan cache, each request solving a batch of
// right-hand sides in one scheduled pass.
type serveConfig struct {
	procs    int  // processors per plan
	clients  int  // concurrent client goroutines
	requests int  // total solve requests across all clients
	batch    int  // right-hand sides per request (SolveBatch width)
	cacheCap int  // plan-cache capacity (skeletons)
	compare  bool // also run the uncached/unbatched baseline
	kind     executor.Kind
}

// serve is the `loops serve` experiment: it demonstrates the end-to-end
// amortization story — N concurrent clients, structurally recurring
// problems, one inspector run per structure, batched executor passes —
// and prints cache hit rates, throughput and (optionally) the naive
// baseline that re-inspects and solves RHS one by one.
func serve(w io.Writer, cfg serveConfig) error {
	if cfg.clients < 1 || cfg.requests < 1 || cfg.batch < 1 {
		return fmt.Errorf("serve: clients, requests and batch must be positive")
	}
	names := problems.TriSolveNames()
	probs := make([]*problems.Problem, len(names))
	for i, name := range names {
		p, err := problems.Get(name)
		if err != nil {
			return err
		}
		probs[i] = p
	}
	fmt.Fprintf(w, "serve: %d clients, %d requests, batch %d, %d procs/plan, %s executor, cache %d\n",
		cfg.clients, cfg.requests, cfg.batch, cfg.procs, cfg.kind, cfg.cacheCap)

	cache := trisolve.NewPlanCache(cfg.cacheCap)
	defer cache.Close()
	cached, err := runServeWorkload(cfg, probs, func(p *problems.Problem) (*trisolve.Plan, error) {
		return cache.Get(p.L, true, trisolve.WithProcs(cfg.procs), trisolve.WithKind(cfg.kind))
	}, true)
	if err != nil {
		return err
	}
	s := cache.Stats()
	fmt.Fprintf(w, "  cached+batched: %8.1f ms wall, %8.0f solves/s (%d requests x %d RHS)\n",
		cached.Seconds()*1e3, float64(cfg.requests*cfg.batch)/cached.Seconds(), cfg.requests, cfg.batch)
	fmt.Fprintf(w, "  plan cache:     %d hits, %d coalesced, %d misses, %d evictions (hit rate %.1f%%, %d resident)\n",
		s.Hits, s.Coalesced, s.Misses, s.Evictions, 100*s.HitRate(), s.Resident)

	if cfg.compare {
		uncached, err := runServeWorkload(cfg, probs, func(p *problems.Problem) (*trisolve.Plan, error) {
			return trisolve.NewPlan(p.L, true, trisolve.WithProcs(cfg.procs), trisolve.WithKind(cfg.kind))
		}, false)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  naive baseline: %8.1f ms wall, %8.0f solves/s (fresh inspector per request, RHS solved one by one)\n",
			uncached.Seconds()*1e3, float64(cfg.requests*cfg.batch)/uncached.Seconds())
		fmt.Fprintf(w, "  speedup:        %.2fx\n", uncached.Seconds()/cached.Seconds())
	}
	return nil
}

// runServeWorkload drives the client pool over the problem sequence. When
// batched is true each request is one SolveBatch pass; otherwise each of
// the batch right-hand sides is solved with its own Solve call (the
// baseline). getPlan supplies either a cache lease or a fresh plan; the
// plan is Closed after the request either way.
func runServeWorkload(cfg serveConfig, probs []*problems.Problem,
	getPlan func(*problems.Problem) (*trisolve.Plan, error), batched bool) (time.Duration, error) {

	var next atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	reportErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(client)))
			for {
				req := int(next.Add(1)) - 1
				if req >= cfg.requests {
					return
				}
				p := probs[req%len(probs)]
				plan, err := getPlan(p)
				if err != nil {
					reportErr(err)
					return
				}
				n := p.L.N
				xs := make([][]float64, cfg.batch)
				bs := make([][]float64, cfg.batch)
				for j := range xs {
					xs[j] = make([]float64, n)
					bs[j] = make([]float64, n)
					for i := range bs[j] {
						bs[j][i] = rng.Float64()
					}
				}
				if batched {
					_, err = plan.SolveBatch(xs, bs)
				} else {
					for j := range xs {
						plan.Solve(xs[j], bs[j])
					}
				}
				if err == nil {
					err = plan.Close()
				} else {
					plan.Close()
				}
				if err != nil {
					reportErr(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	errMu.Lock()
	defer errMu.Unlock()
	return elapsed, firstErr
}

// parseKind resolves an executor kind by its registry name.
func parseKind(name string) (executor.Kind, error) {
	for _, k := range []executor.Kind{
		executor.Sequential, executor.PreScheduled, executor.SelfExecuting,
		executor.DoAcross, executor.Pooled,
	} {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("serve: unknown executor kind %q", name)
}
