// Command loops regenerates the tables and figures of "Run-Time
// Parallelization and Scheduling of Loops" (Saltz, Mirchandaney, Baxter;
// ICASE 88-70 / SPAA 1989) from this repository's reimplementation.
//
// Usage:
//
//	loops <experiment> [flags]
//
// Experiments: summary, fig9, table1, table2, table3, table4, table5,
// fig12, fig13, model, timego, calibrate, numa, gantt, chunks, serve,
// server, router, cluster, loadgen, all.
//
// The serving commands exercise the paper's amortization argument under
// multi-tenant load:
//
//   - server: serve the trisolve HTTP API (internal/server) on a network
//     address, with request coalescing, admission control and /metrics.
//   - router: the distributed tier's front door (internal/router) —
//     consistent-hash solve traffic across -backends replicas with
//     drift-chain affinity and warm plan handoff on rebalance.
//   - cluster: a self-contained multi-replica deployment — N in-process
//     replicas on loopback ports behind a front door on -addr.
//   - loadgen: drive a running server (or front door) with concurrent
//     clients over the recurring problem suite; report throughput,
//     latency percentiles and the server's coalescing and cache-hit
//     rates. -cluster N spins up an in-process cluster to drive.
//   - serve: the in-process demo — the same server package on a loopback
//     port, driven by the same loadgen, with a -compare baseline that
//     disables coalescing.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"doconsider/internal/machine"
	"doconsider/internal/model"
	"doconsider/internal/problems"
	"doconsider/internal/router"
	"doconsider/internal/schedule"
	"doconsider/internal/server"
	"doconsider/internal/tables"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "loops:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("loops", flag.ContinueOnError)
	procs := fs.Int("procs", tables.DefaultProcs, "simulated processor count")
	iters := fs.Int("iters", 50, "Krylov iterations assumed for Table 1")
	large := fs.Bool("large", false, "include the large problem variants (slow)")
	clients := fs.Int("clients", 8, "serve/loadgen: concurrent client goroutines")
	requests := fs.Int("requests", 64, "serve/loadgen: total solve requests")
	batch := fs.Int("batch", 8, "serve/loadgen: right-hand sides per request")
	cacheCap := fs.Int("cache", 8, "serve/server: plan cache capacity")
	kindName := fs.String("kind", "auto", "serve/server: executor kind, or \"auto\" for adaptive planning")
	compare := fs.Bool("compare", true, "serve: also run with coalescing disabled")
	seed := fs.Int64("seed", 1989, "serve/loadgen: base RNG seed (client i uses seed+i)")
	window := fs.Duration("coalesce-window", 2*time.Millisecond, "serve/server: coalescing window (0 disables)")
	width := fs.Int("coalesce-width", 64, "serve/server: max right-hand sides per fused pass")
	addr := fs.String("addr", ":8080", "server: listen address; loadgen: target host:port")
	maxInFlight := fs.Int("max-inflight", 64, "server: admission-control bound on concurrent solves")
	maxBatch := fs.Int("max-batch", 64, "serve/server: max right-hand sides accepted per request")
	reqTimeout := fs.Duration("timeout", 30*time.Second, "server: default per-request deadline; loadgen: client timeout")
	driftRate := fs.Float64("drift-rate", 0, "serve/loadgen: probability a request structurally drifts its problem (base_fp+edits)")
	driftEdits := fs.Int("drift-edits", 4, "serve/loadgen: row edits per drift step")
	wire := fs.String("wire", wireJSON, "loadgen: wire format, json or binary (zero-copy frames)")
	trace := fs.Bool("trace", false, "loadgen: fetch /v1/trace after the run and print per-stage latency percentiles")
	debugAddr := fs.String("debug-addr", "", "server: pprof/runtime debug listener address (empty disables)")
	tenants := fs.Int("tenants", 0, "loadgen: adversarial tenant mix: tenant 0 latency-class, rest flooding batch (0 disables, else >= 2)")
	tenantWeights := fs.String("tenant-weights", "", "server: per-tenant DRR weights, e.g. lat-0=8,batch-1=1 (unlisted tenants weigh 1)")
	tenantQuota := fs.Int("tenant-quota", 0, "server: per-tenant in-flight quota; over-quota requests shed 429 (0 = unlimited)")
	tenantQueue := fs.Int("tenant-queue", 0, "server: per-tenant per-class admission queue depth (0 = default 16, negative sheds immediately)")
	tenantMax := fs.Int("tenant-max", 0, "server: tenant metric-cardinality cap; overflow pools into \"other\" (0 = default 32)")
	latencyWindow := fs.Duration("latency-window", 0, "server: coalescing window for latency-class requests (0 = coalesce-window/8, negative disables)")
	hotFactors := fs.Int("hot-factors", 0, "server: hot-factor ring capacity for warm binary fp lookups (0 = default 8)")
	backends := fs.String("backends", "", "router: comma-separated replica addresses (host:port)")
	replicas := fs.Int("replicas", 2, "cluster: in-process replica count")
	clusterN := fs.Int("cluster", 0, "loadgen: spin up an in-process N-replica cluster and drive its front door (0 = use -addr)")
	vnodes := fs.Int("vnodes", 0, "router/cluster: virtual nodes per backend (0 = default 64)")
	warmLimit := fs.Int("warm-limit", 0, "router/cluster: hot fingerprints handed off per losing replica on rebalance (0 = default 32)")
	if len(args) == 0 {
		usage(fs)
		return fmt.Errorf("missing experiment name")
	}
	exp := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if err := validateServingFlags(exp, *width, *reqTimeout, *window); err != nil {
		usage(fs)
		return err
	}
	if err := validateDriftFlags(exp, *driftRate, *driftEdits); err != nil {
		usage(fs)
		return err
	}
	if err := validateWireFlag(exp, *wire); err != nil {
		usage(fs)
		return err
	}
	if err := validateTenantsFlag(exp, *tenants); err != nil {
		usage(fs)
		return err
	}
	weights, err := parseTenantWeights(*tenantWeights)
	if err != nil {
		usage(fs)
		return err
	}

	switch exp {
	case "summary":
		tables.FprintSummary(os.Stdout)
	case "fig9":
		return tables.FprintFigure9(os.Stdout, 5, 7, 4)
	case "table1":
		return table1(*procs, *iters, *large)
	case "table2":
		return solveTable(machine.SelfExecutingSim, *procs)
	case "table3":
		return solveTable(machine.PreScheduledSim, *procs)
	case "table4":
		return table4(*procs)
	case "table5":
		return table5(*procs)
	case "fig12":
		return fig12(*procs)
	case "fig13":
		return fig13(*procs)
	case "model":
		return modelReport(*procs)
	case "timego":
		return timego(*procs)
	case "calibrate":
		return calibrate(*procs)
	case "numa":
		return numa(*procs)
	case "gantt":
		return gantt(*procs)
	case "chunks":
		return chunks(*procs)
	case "serve":
		kind, err := parseKind(*kindName)
		if err != nil {
			return err
		}
		return serve(os.Stdout, serveConfig{
			procs: serveProcs(fs, *procs), clients: *clients, requests: *requests,
			batch: *batch, cacheCap: *cacheCap, compare: *compare, kind: kind,
			window: *window, width: *width, seed: *seed, maxBatch: *maxBatch,
			driftRate: *driftRate, driftEdits: *driftEdits,
		})
	case "server":
		kind, err := parseKind(*kindName)
		if err != nil {
			return err
		}
		return runServer(os.Stdout, serverConfig{
			addr: *addr, debugAddr: *debugAddr, procs: serveProcs(fs, *procs), kind: kind,
			cacheCap: *cacheCap, window: *window, latencyWindow: *latencyWindow,
			width: *width, maxInFlight: *maxInFlight, hotFactors: *hotFactors,
			maxBatch: *maxBatch, timeout: *reqTimeout, drainWait: 30 * time.Second,
			tenantWeights: weights, tenantQuota: *tenantQuota,
			tenantQueue: *tenantQueue, tenantMax: *tenantMax,
		}, nil)
	case "router":
		backendList, err := parseBackends(*backends)
		if err != nil {
			return err
		}
		return runRouter(os.Stdout, routerCmdConfig{
			addr: *addr, backends: backendList, vnodes: *vnodes,
			warmLimit: *warmLimit, drainWait: 30 * time.Second,
		}, nil)
	case "cluster":
		kind, err := parseKind(*kindName)
		if err != nil {
			return err
		}
		return runCluster(os.Stdout, clusterCmdConfig{
			addr: *addr, replicas: *replicas,
			server: serverConfig{
				procs: serveProcs(fs, *procs), kind: kind,
				cacheCap: *cacheCap, window: *window, latencyWindow: *latencyWindow,
				width: *width, maxInFlight: *maxInFlight, hotFactors: *hotFactors,
				maxBatch: *maxBatch, timeout: *reqTimeout, drainWait: 30 * time.Second,
				tenantWeights: weights, tenantQuota: *tenantQuota,
				tenantQueue: *tenantQueue, tenantMax: *tenantMax,
			},
		}, nil)
	case "loadgen":
		target := *addr
		if target != "" && target[0] == ':' {
			target = "127.0.0.1" + target
		}
		baseURL := "http://" + target
		var cl *router.Cluster
		if *clusterN > 0 {
			// In-process cluster mode: the scaling demo. The replicas and
			// the front door live in this process; the loadgen drives the
			// front door exactly as it would a remote one.
			kind, err := parseKind(*kindName)
			if err != nil {
				return err
			}
			cl, err = router.NewCluster(*clusterN, server.Config{
				Procs: serveProcs(fs, *procs), Kind: kind, CacheCap: *cacheCap,
				MaxBatch: *maxBatch, DefaultTimeout: *reqTimeout,
				Coalesce: server.CoalesceConfig{Window: *window, LatencyWindow: *latencyWindow, Width: *width},
			}, router.Config{VNodes: *vnodes, WarmLimit: *warmLimit}, "127.0.0.1:0")
			if err != nil {
				return err
			}
			baseURL = cl.URL()
			fmt.Printf("loadgen: in-process cluster of %d replicas behind %s\n", *clusterN, baseURL)
		}
		rep, err := loadgen(os.Stdout, loadgenConfig{
			baseURL: baseURL, clients: *clients, requests: *requests,
			batch: *batch, seed: *seed, timeout: *reqTimeout,
			driftRate: *driftRate, driftEdits: *driftEdits, wire: *wire, trace: *trace,
			tenants: *tenants, noStats: cl != nil,
		})
		if cl != nil {
			st := cl.Router().Stats()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			cerr := cl.Close(ctx)
			cancel()
			if err == nil && cerr != nil {
				err = cerr
			}
			if err == nil {
				printRouterStats(os.Stdout, st)
			}
		}
		if err != nil {
			return err
		}
		printLoadgenReport(os.Stdout, rep, *batch)
		if rep.failed > 0 {
			return fmt.Errorf("loadgen: %d requests failed (e.g. %s)", rep.failed, rep.failMsg)
		}
		return nil
	case "all":
		for _, e := range []string{"summary", "fig9", "table1", "table2", "table3",
			"table4", "table5", "fig12", "fig13", "model", "timego", "numa"} {
			fmt.Println()
			if err := run(append([]string{e}, args[1:]...)); err != nil {
				return fmt.Errorf("%s: %w", e, err)
			}
		}
	default:
		usage(fs)
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

// validateServingFlags rejects serving-flag values that would otherwise
// produce undefined behavior deep in the stack: a zero or negative
// -coalesce-width (a fused pass must hold at least one right-hand side)
// and negative durations for -timeout and -coalesce-window. Only the
// serving experiments consume these flags; the table/figure experiments
// ignore them, so they are not validated there.
func validateServingFlags(exp string, width int, timeout, window time.Duration) error {
	switch exp {
	case "serve", "server", "loadgen":
	default:
		return nil
	}
	if width <= 0 && exp != "loadgen" {
		return fmt.Errorf("usage: -coalesce-width must be positive, got %d", width)
	}
	if timeout < 0 {
		return fmt.Errorf("usage: -timeout must not be negative, got %s", timeout)
	}
	if window < 0 && exp != "loadgen" {
		return fmt.Errorf("usage: -coalesce-window must not be negative, got %s", window)
	}
	return nil
}

// validateWireFlag rejects unknown -wire formats before any traffic is
// generated. Only loadgen speaks the binary protocol; serve compares
// coalescing configurations over JSON and the other experiments ignore
// the flag.
func validateWireFlag(exp, wire string) error {
	if exp != "loadgen" {
		return nil
	}
	switch wire {
	case "", wireJSON, wireBinary:
		return nil
	}
	return fmt.Errorf("usage: -wire must be %s or %s, got %q", wireJSON, wireBinary, wire)
}

// validateTenantsFlag rejects degenerate adversarial mixes: the mode
// exists to pit one latency tenant against flooding batch tenants, so a
// single tenant is meaningless (plain loadgen already covers it).
func validateTenantsFlag(exp string, tenants int) error {
	if exp != "loadgen" {
		return nil
	}
	if tenants != 0 && tenants < 2 {
		return fmt.Errorf("usage: -tenants must be 0 (off) or >= 2 (1 latency + >=1 batch), got %d", tenants)
	}
	return nil
}

// parseTenantWeights parses the -tenant-weights flag, a comma-separated
// name=weight list. Weights must be positive integers; unlisted tenants
// default to weight 1 server-side.
func parseTenantWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	weights := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("usage: -tenant-weights entry %q is not name=weight", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("usage: -tenant-weights weight for %q must be a positive integer, got %q", name, val)
		}
		weights[name] = w
	}
	return weights, nil
}

// validateDriftFlags bounds the drifting-workload knobs: a drift rate is
// a probability, and a drift step must make at least one edit.
func validateDriftFlags(exp string, rate float64, edits int) error {
	switch exp {
	case "serve", "loadgen":
	default:
		return nil
	}
	if rate < 0 || rate > 1 {
		return fmt.Errorf("usage: -drift-rate must be in [0,1], got %g", rate)
	}
	if rate > 0 && edits < 1 {
		return fmt.Errorf("usage: -drift-edits must be positive when -drift-rate is set, got %d", edits)
	}
	return nil
}

func usage(fs *flag.FlagSet) {
	fmt.Fprintln(os.Stderr, "usage: loops <summary|fig9|table1|table2|table3|table4|table5|fig12|fig13|model|timego|calibrate|numa|gantt|chunks|serve|server|router|cluster|loadgen|all> [flags]")
	fs.PrintDefaults()
}

// parseBackends splits the -backends list, rejecting empty entries (a
// stray comma would silently shrink the ring).
func parseBackends(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("usage: router requires -backends host:port[,host:port...]")
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("usage: -backends contains an empty address in %q", s)
		}
		out = append(out, p)
	}
	return out, nil
}

// serveProcs caps the -procs default for real goroutine execution: the
// default of 16 suits the simulator tables but oversubscribes actual
// workers, so cap it at 4 (an explicit -procs is honored as given).
func serveProcs(fs *flag.FlagSet, procs int) int {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "procs" {
			set = true
		}
	})
	if !set && procs > 4 {
		return 4
	}
	return procs
}

func table1(procs, iters int, large bool) error {
	names := problems.Names()
	if large {
		names = append(names, problems.LargeNames()...)
	}
	rows, err := tables.Table1(names, procs, iters)
	if err != nil {
		return err
	}
	tables.FprintTable1(os.Stdout, rows, procs)
	return nil
}

func solveTable(kind machine.Executor, procs int) error {
	rows, err := tables.TriSolveDecomposition(problems.TriSolveNames(), procs, kind)
	if err != nil {
		return err
	}
	tables.FprintSolveRows(os.Stdout, rows, kind, procs)
	return nil
}

func table4(procs int) error {
	counts := []int{procs, procs * 2, procs * 4}
	rows, err := tables.Table4(problems.TriSolveNames(), counts)
	if err != nil {
		return err
	}
	tables.FprintTable4(os.Stdout, rows, counts)
	return nil
}

func table5(procs int) error {
	names := append([]string{"SPE2", "SPE5", "5-PT", "9-PT"}, problems.SyntheticNames()...)
	rows, err := tables.Table5(names, procs)
	if err != nil {
		return err
	}
	tables.FprintTable5(os.Stdout, rows, procs)
	return nil
}

func fig12(procs int) error {
	pts, err := tables.Figure12(procs)
	if err != nil {
		return err
	}
	tables.FprintFigure12(os.Stdout, pts)
	return nil
}

func fig13(procs int) error {
	pts, err := tables.Figure13(procs+1, 200, procs)
	if err != nil {
		return err
	}
	tables.FprintFigure13(os.Stdout, pts, procs+1, 200)
	return nil
}

func timego(procs int) error {
	for _, name := range []string{"SPE2", "5-PT"} {
		rows, err := tables.WhereDoesTheTimeGo(name, procs)
		if err != nil {
			return err
		}
		tables.FprintTimeGo(os.Stdout, name, procs, rows)
		fmt.Println()
	}
	return nil
}

func chunks(procs int) error {
	fmt.Printf("Dynamic self-scheduling chunk study (%d processors, claim cost 2 work units)\n", procs)
	fmt.Printf("%-9s", "Problem")
	labels := []string{"static", "chunk1", "chunk8", "chunk32", "guided"}
	for _, l := range labels {
		fmt.Printf(" %9s", l)
	}
	fmt.Println()
	costs := machine.MultimaxCosts()
	const claimCost = 2.0
	for _, name := range problems.TriSolveNames() {
		p, err := problems.Get(name)
		if err != nil {
			return err
		}
		order := schedule.Global(p.Wf, 1).Proc(0)
		static, err := machine.SimulateSelfExecuting(schedule.Global(p.Wf, procs), p.Deps, p.Work, costs)
		if err != nil {
			return err
		}
		results := []float64{static.Makespan}
		for _, pol := range []machine.ChunkPolicy{
			machine.FixedChunk(1), machine.FixedChunk(8), machine.FixedChunk(32),
			machine.GuidedChunk(1),
		} {
			r, err := machine.SimulateSelfScheduled(order, p.Deps, p.Work, procs, pol, claimCost, costs)
			if err != nil {
				return err
			}
			results = append(results, r.Makespan)
		}
		fmt.Printf("%-9s", name)
		for _, v := range results {
			fmt.Printf(" %9.0f", v)
		}
		fmt.Println()
	}
	fmt.Println("\nSmall chunks track the static wavefront schedule closely; large and guided")
	fmt.Println("chunks — tuned for doall loops — serialize dependence runs inside a single")
	fmt.Println("worker and collapse. Guided self-scheduling's big early chunks are exactly")
	fmt.Println("wrong for doconsider loops, which is why the paper builds schedules from the")
	fmt.Println("dependence structure instead of claiming blindly.")
	return nil
}

func gantt(procs int) error {
	// A narrow model problem (m = procs+1) makes the pipelining visible:
	// the pre-scheduled Gantt shows end-of-phase stalls; self-execution
	// fills them.
	p, err := problems.Get(fmt.Sprintf("%dmesh", 65))
	if err != nil {
		return err
	}
	gs := schedule.Local(p.Wf, procs, schedule.Striped)
	costs := machine.MultimaxCosts()
	tr, err := machine.TraceSelfExecuting(gs, p.Deps, p.Work, costs)
	if err != nil {
		return err
	}
	fmt.Printf("Self-executing timeline, 65x65 mesh, %d processors (striped, local sort):\n", procs)
	if err := tr.Gantt(os.Stdout, 100); err != nil {
		return err
	}
	util := tr.Utilization()
	min, max := 1.0, 0.0
	for _, u := range util {
		if u < min {
			min = u
		}
		if u > max {
			max = u
		}
	}
	fmt.Printf("utilization: min %.2f max %.2f\n\n", min, max)

	trPre := machine.TracePreScheduled(gs, p.Work, costs)
	fmt.Printf("Pre-scheduled timeline (same schedule, barrier per phase):\n")
	if err := trPre.Gantt(os.Stdout, 100); err != nil {
		return err
	}
	utilPre := trPre.Utilization()
	min, max = 1.0, 0.0
	for _, u := range utilPre {
		if u < min {
			min = u
		}
		if u > max {
			max = u
		}
	}
	fmt.Printf("utilization: min %.2f max %.2f (idle = barrier stalls)\n", min, max)
	return nil
}

func calibrate(procs int) error {
	c := machine.Calibrate(procs)
	fmt.Printf("host calibration (%d goroutine parties, Tflop normalized to 1):\n", procs)
	fmt.Printf("  Tsynch  %8.2f   (global synchronization)\n", c.Tsynch)
	fmt.Printf("  Tcheck  %8.2f   (shared ready-array read)\n", c.Tcheck)
	fmt.Printf("  Tinc    %8.2f   (shared ready-array write)\n", c.Tinc)
	fmt.Println("\nTable 2/3 decomposition with host-calibrated costs is available by")
	fmt.Println("substituting these constants for machine.MultimaxCosts in the drivers.")
	return nil
}

func numa(procs int) error {
	c := machine.DefaultNUMACosts()
	fmt.Printf("Hierarchical/distributed memory projection (§5.1.3 extension), %d processors\n", procs)
	fmt.Printf("remote check/local check cost ratio: %.1f\n\n", c.TcheckRemote/c.TcheckLocal)
	fmt.Printf("%-9s %10s %10s %12s %12s %12s\n",
		"Problem", "RemFrac-G", "RemFrac-L", "SE-NUMA(G)", "SE-NUMA(L)", "PS-NUMA")
	for _, name := range problems.TriSolveNames() {
		p, err := problems.Get(name)
		if err != nil {
			return err
		}
		gs := schedule.Global(p.Wf, procs)
		ls := schedule.Local(p.Wf, procs, schedule.Blocked)
		rg, err := machine.SimulateSelfExecutingNUMA(gs, p.Deps, p.Work, c)
		if err != nil {
			return err
		}
		rl, err := machine.SimulateSelfExecutingNUMA(ls, p.Deps, p.Work, c)
		if err != nil {
			return err
		}
		ps := machine.SimulatePreScheduledNUMA(gs, p.Work, c)
		fmt.Printf("%-9s %10.2f %10.2f %12.0f %12.0f %12.0f\n",
			name,
			machine.RemoteFraction(gs, p.Deps),
			machine.RemoteFraction(ls, p.Deps),
			rg.Makespan, rl.Makespan, ps.Makespan)
	}
	fmt.Println("\nRemote busy-wait checks at 10x local cost erase the self-executing")
	fmt.Println("advantage: pre-scheduling wins every problem in this projection. Blocked")
	fmt.Println("partitions cut the remote fraction but pay in load balance — the")
	fmt.Println("locality/balance tension that pushed this line of work toward")
	fmt.Println("message-passing runtimes on distributed memory.")
	return nil
}

func modelReport(procs int) error {
	fmt.Println("Section 4 analytic model (m x n five-point mesh model problem)")
	costs := machine.MultimaxCosts()
	r := model.Ratios{Rsynch: costs.Tsynch, Rinc: costs.Tinc, Rcheck: costs.Tcheck}
	fmt.Printf("Cost ratios: Rsynch=%.0f Rinc=%.2f Rcheck=%.2f\n\n", r.Rsynch, r.Rinc, r.Rcheck)
	fmt.Printf("%-28s %10s %10s %10s\n", "Domain", "Eopt(PS)", "Eopt(SE)", "T_PS/T_SE")
	for _, c := range []struct{ m, n int }{
		{procs + 1, 100}, {procs + 1, 1000}, {64, 64}, {256, 256}, {1024, 1024},
	} {
		fmt.Printf("%-28s %10.3f %10.3f %10.3f\n",
			fmt.Sprintf("%dx%d, p=%d", c.m, c.n, procs),
			model.EoptPreScheduled(c.m, c.n, procs),
			model.EoptSelfExecuting(c.m, c.n, procs),
			model.TimeRatio(c.m, c.n, procs, r))
	}
	fmt.Printf("\nNarrow-domain limit (eq. 6, m=p+1):        %.3f\n",
		model.TimeRatioLimitNarrow(procs, r))
	fmt.Printf("Narrow-domain limit (elapsed convention):  %.3f\n",
		model.TimeRatioLimitNarrowElapsed(procs, r))
	fmt.Printf("Square-domain limit (eq. 7):               %.3f\n",
		model.TimeRatioLimitSquare(r))
	se, ps := model.DenseTriangular(1000)
	fmt.Printf("Dense triangular n=1000 on n-1 procs: Eopt(SE)=%.3f Eopt(PS)=%.4f\n", se, ps)
	return nil
}
