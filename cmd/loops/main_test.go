package main

import "testing"

func TestRunCheapExperiments(t *testing.T) {
	for _, args := range [][]string{
		{"summary"},
		{"fig9"},
		{"model", "-procs", "4"},
		{"fig13", "-procs", "4"},
		{"fig12", "-procs", "4"},
		{"timego", "-procs", "4"},
		{"numa", "-procs", "4"},
		{"gantt", "-procs", "4"},
		{"chunks", "-procs", "4"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunTables(t *testing.T) {
	if testing.Short() {
		t.Skip("tables are slow in -short mode")
	}
	for _, args := range [][]string{
		{"table2", "-procs", "8"},
		{"table3", "-procs", "8"},
		{"table4", "-procs", "8"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("accepted empty args")
	}
	if err := run([]string{"nonsense"}); err == nil {
		t.Error("accepted unknown experiment")
	}
	if err := run([]string{"table1", "-bogus"}); err == nil {
		t.Error("accepted unknown flag")
	}
}
