package main

import (
	"strings"
	"testing"
)

func TestRunCheapExperiments(t *testing.T) {
	for _, args := range [][]string{
		{"summary"},
		{"fig9"},
		{"model", "-procs", "4"},
		{"fig13", "-procs", "4"},
		{"fig12", "-procs", "4"},
		{"timego", "-procs", "4"},
		{"numa", "-procs", "4"},
		{"gantt", "-procs", "4"},
		{"chunks", "-procs", "4"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunTables(t *testing.T) {
	if testing.Short() {
		t.Skip("tables are slow in -short mode")
	}
	for _, args := range [][]string{
		{"table2", "-procs", "8"},
		{"table3", "-procs", "8"},
		{"table4", "-procs", "8"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("accepted empty args")
	}
	if err := run([]string{"nonsense"}); err == nil {
		t.Error("accepted unknown experiment")
	}
	if err := run([]string{"table1", "-bogus"}); err == nil {
		t.Error("accepted unknown flag")
	}
}

// TestServingFlagValidation pins the usage errors for serving-flag
// values that previously reached the server as undefined behavior: a
// fused pass cannot hold zero (or negatively many) right-hand sides, and
// negative durations are not timeouts. Table experiments ignore the
// serving flags entirely, so they must keep accepting them.
func TestServingFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"serve", "-coalesce-width", "0"},
		{"serve", "-coalesce-width", "-3"},
		{"server", "-coalesce-width", "0"},
		{"serve", "-timeout", "-1s"},
		{"server", "-timeout", "-1ms"},
		{"loadgen", "-timeout", "-5s"},
		{"serve", "-coalesce-window", "-1ms"},
		{"server", "-coalesce-window", "-1s"},
		{"loadgen", "-wire", "grpc"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v): accepted invalid serving flag", args)
		} else if !strings.Contains(err.Error(), "usage:") {
			t.Errorf("run(%v): error %q is not a usage error", args, err)
		}
	}
	// Sanity: the same values are fine for experiments that ignore them.
	if err := run([]string{"summary", "-coalesce-width", "0", "-timeout", "-1s"}); err != nil {
		t.Errorf("summary rejected irrelevant serving flags: %v", err)
	}
}

// TestDriftFlagValidation pins the usage errors for the drifting
// workload knobs: a drift rate is a probability and a drift step must
// edit at least one row.
func TestDriftFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"serve", "-drift-rate", "-0.1"},
		{"serve", "-drift-rate", "1.5"},
		{"loadgen", "-drift-rate", "2"},
		{"serve", "-drift-rate", "0.5", "-drift-edits", "0"},
		{"loadgen", "-drift-rate", "0.5", "-drift-edits", "-2"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v): accepted invalid drift flag", args)
		} else if !strings.Contains(err.Error(), "usage:") {
			t.Errorf("run(%v): error %q is not a usage error", args, err)
		}
	}
	if err := run([]string{"summary", "-drift-rate", "7"}); err != nil {
		t.Errorf("summary rejected irrelevant drift flags: %v", err)
	}
}

func TestParseTenantWeights(t *testing.T) {
	got, err := parseTenantWeights("acme=3, beta=1")
	if err != nil || got["acme"] != 3 || got["beta"] != 1 || len(got) != 2 {
		t.Fatalf("parseTenantWeights = %v, %v", got, err)
	}
	if got, err := parseTenantWeights(""); err != nil || got != nil {
		t.Fatalf("empty weights = %v, %v, want nil, nil", got, err)
	}
	for _, bad := range []string{"acme", "=3", "acme=zero", "acme=0", "acme=-1"} {
		if _, err := parseTenantWeights(bad); err == nil {
			t.Errorf("accepted malformed -tenant-weights %q", bad)
		}
	}
}
