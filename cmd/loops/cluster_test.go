package main

import (
	"context"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"doconsider/internal/server"
)

// syncBuffer is an io.Writer the test can read while the command
// goroutine is still writing (runRouter/runCluster print their listen
// line before blocking on the stop channel).
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitForAddr polls the buffer until the line containing marker appears
// and returns the host:port token that follows it.
func waitForAddr(t *testing.T, out *syncBuffer, marker string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		got := out.String()
		if i := strings.Index(got, marker); i >= 0 {
			rest := got[i+len(marker):]
			if j := strings.IndexByte(rest, ' '); j > 0 {
				return rest[:j]
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("command never printed %q:\n%s", marker, out.String())
	return ""
}

func shutdownServer(t *testing.T, s *server.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("replica shutdown: %v", err)
	}
}

func TestParseBackends(t *testing.T) {
	got, err := parseBackends(" 10.0.0.1:9000 ,10.0.0.2:9000")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "10.0.0.1:9000" || got[1] != "10.0.0.2:9000" {
		t.Fatalf("parseBackends = %v", got)
	}
	if _, err := parseBackends(""); err == nil {
		t.Error("accepted an empty backend list")
	}
	if _, err := parseBackends("a:1,,b:2"); err == nil {
		t.Error("accepted an empty backend entry")
	}
	if err := run([]string{"router"}); err == nil {
		t.Error("router command accepted no -backends")
	}
}

// TestRouterCommandRunsAndDrains drives the `loops router` subcommand
// lifecycle against two real replica servers: it comes up, routes a
// loadgen burst, and the stop channel (the test's stand-in for SIGINT)
// triggers a graceful drain that prints the per-backend breakdown.
func TestRouterCommandRunsAndDrains(t *testing.T) {
	var addrs []string
	for i := 0; i < 2; i++ {
		s, err := server.New(server.Config{Procs: 1, CacheCap: 8})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		defer shutdownServer(t, s)
		addrs = append(addrs, s.Addr())
	}

	stop := make(chan struct{})
	done := make(chan error, 1)
	var out syncBuffer
	go func() {
		done <- runRouter(&out, routerCmdConfig{
			addr: "127.0.0.1:0", backends: addrs, drainWait: 10 * time.Second,
		}, stop)
	}()
	front := waitForAddr(t, &out, "router: listening on ")

	rep, err := loadgen(io.Discard, loadgenConfig{
		baseURL: "http://" + front, clients: 2, requests: 8, batch: 1,
		seed: 5, problems: []string{"SPE2", "5-PT"}, quiet: true, noStats: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ok != 8 || rep.failed != 0 {
		t.Fatalf("loadgen through router: %d ok, %d failed (%s)", rep.ok, rep.failed, rep.failMsg)
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("router did not drain")
	}
	got := out.String()
	for _, want := range []string{"router: listening on", "router:", "backend " + addrs[0], "backend " + addrs[1]} {
		if !strings.Contains(got, want) {
			t.Errorf("router output missing %q:\n%s", want, got)
		}
	}
}

// TestClusterCommandRunsAndDrains drives the `loops cluster` subcommand:
// a self-contained front door plus replicas on one command line, serving
// a loadgen burst and draining on stop with the router report.
func TestClusterCommandRunsAndDrains(t *testing.T) {
	stop := make(chan struct{})
	done := make(chan error, 1)
	var out syncBuffer
	go func() {
		done <- runCluster(&out, clusterCmdConfig{
			addr: "127.0.0.1:0", replicas: 2,
			server: serverConfig{
				procs: 1, kind: "pooled", cacheCap: 4,
				window: time.Millisecond, width: 8,
				drainWait: 10 * time.Second,
			},
		}, stop)
	}()
	front := waitForAddr(t, &out, "cluster: front door on ")

	rep, err := loadgen(io.Discard, loadgenConfig{
		baseURL: "http://" + front, clients: 2, requests: 8, batch: 1,
		seed: 9, problems: []string{"SPE2"}, quiet: true, noStats: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ok != 8 || rep.failed != 0 {
		t.Fatalf("loadgen through cluster: %d ok, %d failed (%s)", rep.ok, rep.failed, rep.failMsg)
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cluster did not drain")
	}
	got := out.String()
	for _, want := range []string{"cluster: front door on", "over 2 replicas", "router:", "backend "} {
		if !strings.Contains(got, want) {
			t.Errorf("cluster output missing %q:\n%s", want, got)
		}
	}
}

// TestLoadgenClusterFlag exercises the `loops loadgen -cluster N` path
// end to end through the flag parser: an in-process cluster is built,
// driven, and reported on one command line.
func TestLoadgenClusterFlag(t *testing.T) {
	if err := run([]string{"loadgen", "-cluster", "2", "-clients", "2",
		"-requests", "6", "-batch", "1", "-procs", "1", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"loadgen", "-cluster", "1", "-kind", "bogus"}); err == nil {
		t.Fatal("loadgen -cluster accepted an unknown executor kind")
	}
}

// TestLoadgenTenantTraceReport drives loadgen's observability surface
// against a real server: the -tenants adversarial mix produces the
// per-tenant table and -trace produces the per-stage latency table.
func TestLoadgenTenantTraceReport(t *testing.T) {
	s, err := server.New(server.Config{Procs: 1, CacheCap: 8, TraceSampleEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer shutdownServer(t, s)

	var out strings.Builder
	rep, err := loadgen(&out, loadgenConfig{
		baseURL: "http://" + s.Addr(), clients: 3, requests: 18, batch: 1,
		seed: 21, problems: []string{"SPE2"}, tenants: 3, trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ok != 18 || rep.failed != 0 {
		t.Fatalf("loadgen: %d ok, %d failed (%s)", rep.ok, rep.failed, rep.failMsg)
	}
	if len(rep.perTenant) != 3 {
		t.Fatalf("per-tenant breakdown has %d tenants, want 3", len(rep.perTenant))
	}
	printLoadgenReport(&out, rep, 1)
	got := out.String()
	for _, want := range []string{"tenants:", "lat-0", "latency", "batch-1", "batch-2"} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
	// TraceSampleEvery=1 traces every request, so the stage table is
	// deterministic: every stage sample lands in the ring.
	if len(rep.stageMs) == 0 {
		t.Fatal("trace fetch returned no per-stage samples despite 1-in-1 sampling")
	}
	if !strings.Contains(got, "stages (server-side") {
		t.Errorf("stage samples collected but not rendered:\n%s", got)
	}
}
