package main

import (
	"strings"
	"testing"
	"time"
)

func TestServeSmoke(t *testing.T) {
	var out strings.Builder
	err := serve(&out, serveConfig{
		procs: 2, clients: 4, requests: 12, batch: 3,
		cacheCap: 4, window: 2 * time.Millisecond, width: 16,
		seed: 3, compare: true, kind: "pooled",
	})
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"plan cache:", "hit rate", "speedup:", "exec coalescer:", "latency:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("serve output missing %q:\n%s", want, got)
		}
	}
}

func TestServeFlagPlumbing(t *testing.T) {
	if err := run([]string{"serve", "-clients", "2", "-requests", "4", "-batch", "2",
		"-cache", "2", "-kind", "self-executing", "-compare=false", "-procs", "2",
		"-seed", "42", "-coalesce-window", "1ms", "-coalesce-width", "8"}); err != nil {
		t.Fatal(err)
	}
	// Kind 0 regression: an explicit sequential executor must be honored,
	// not silently replaced by the pooled default.
	if err := run([]string{"serve", "-clients", "2", "-requests", "4", "-batch", "2",
		"-kind", "sequential", "-compare=false", "-procs", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"serve", "-kind", "bogus"}); err == nil {
		t.Fatal("accepted unknown executor kind")
	}
	if err := run([]string{"server", "-kind", "bogus"}); err == nil {
		t.Fatal("server accepted unknown executor kind")
	}
	if err := run([]string{"loadgen", "-requests", "0"}); err == nil {
		t.Fatal("loadgen accepted zero requests")
	}
}

func TestServeRejectsBadConfig(t *testing.T) {
	err := serve(&strings.Builder{}, serveConfig{procs: 1, clients: 0, requests: 1, batch: 1, kind: "sequential"})
	if err == nil {
		t.Fatal("accepted zero clients")
	}
}

// TestServerCommandRunsAndDrains drives the `loops server` subcommand
// lifecycle: it comes up on an ephemeral port, and the stop channel (the
// test's stand-in for SIGINT) triggers a graceful drain.
func TestServerCommandRunsAndDrains(t *testing.T) {
	stop := make(chan struct{})
	done := make(chan error, 1)
	var out strings.Builder
	go func() {
		done <- runServer(&out, serverConfig{
			addr: "127.0.0.1:0", procs: 1, kind: "pooled", cacheCap: 4,
			window: time.Millisecond, width: 8, maxInFlight: 8,
			timeout: 5 * time.Second, drainWait: 10 * time.Second,
		}, stop)
	}()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain")
	}
	got := out.String()
	for _, want := range []string{"listening on", "drained"} {
		if !strings.Contains(got, want) {
			t.Errorf("server output missing %q:\n%s", want, got)
		}
	}
}
