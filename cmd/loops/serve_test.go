package main

import (
	"strings"
	"testing"

	"doconsider/internal/executor"
)

func TestServeSmoke(t *testing.T) {
	var out strings.Builder
	err := serve(&out, serveConfig{
		procs: 2, clients: 4, requests: 12, batch: 3,
		cacheCap: 4, compare: true, kind: executor.Pooled,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"plan cache:", "hit rate", "speedup:"} {
		if !strings.Contains(got, want) {
			t.Errorf("serve output missing %q:\n%s", want, got)
		}
	}
}

func TestServeFlagPlumbing(t *testing.T) {
	if err := run([]string{"serve", "-clients", "2", "-requests", "4", "-batch", "2",
		"-cache", "2", "-kind", "self-executing", "-compare=false", "-procs", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"serve", "-kind", "bogus"}); err == nil {
		t.Fatal("accepted unknown executor kind")
	}
}

func TestServeRejectsBadConfig(t *testing.T) {
	err := serve(&strings.Builder{}, serveConfig{procs: 1, clients: 0, requests: 1, batch: 1, kind: executor.Sequential})
	if err == nil {
		t.Fatal("accepted zero clients")
	}
}
