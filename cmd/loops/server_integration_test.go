package main

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"doconsider/internal/server"
)

// TestServerLoadgenIntegration is the end-to-end serving test the CI race
// matrix runs: a real server on 127.0.0.1:0, driven by the real loadgen
// over the recurring problem suite with enough concurrent clients that
// requests fuse, followed by a graceful drain.
func TestServerLoadgenIntegration(t *testing.T) {
	// Kind is pinned to pooled: the test asserts that concurrent clients
	// fuse into shared passes, which relies on passes serializing on the
	// shared worker pool for backpressure. Under the adaptive default the
	// planner picks sequential on small hosts and passes complete too
	// quickly to overlap — correct behavior, but not the machinery this
	// test exists to exercise.
	s, err := server.New(server.Config{
		Procs:    2,
		Kind:     "pooled",
		CacheCap: 8,
		Coalesce: server.CoalesceConfig{Window: 20 * time.Millisecond, Width: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	baseURL := "http://" + s.Addr()

	var out strings.Builder
	rep, err := loadgen(&out, loadgenConfig{
		baseURL:  baseURL,
		clients:  8,
		requests: 32,
		batch:    2,
		seed:     7,
		problems: []string{"SPE2", "5-PT"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ok != 32 || rep.failed != 0 || rep.refused != 0 {
		t.Fatalf("loadgen report: %d ok, %d refused, %d failed, want 32 clean", rep.ok, rep.refused, rep.failed)
	}
	st := s.Stats()
	if st.Coalesce.Rate <= 0 {
		t.Errorf("coalescing rate = %v with 8 concurrent clients on 2 recurring structures, want > 0", st.Coalesce.Rate)
	}
	if st.CacheHitRate <= 0.5 {
		t.Errorf("plan cache hit rate = %v over a recurring suite, want > 0.5", st.CacheHitRate)
	}
	if st.FactorCache.Hits == 0 {
		t.Error("no factor-cache hits: loadgen's by-fingerprint resubmission is not reaching the server")
	}

	// The metrics exposition is live and carries the serving families.
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"loops_plan_cache_hit_rate",
		"loops_http_in_flight",
		`loops_http_request_seconds_bucket{endpoint="trisolve"`,
		"loops_coalesce_passes_total",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Drain while a second loadgen burst is in flight: every request must
	// resolve (served or refused), none may hang, and the server must
	// refuse traffic afterwards.
	var wg sync.WaitGroup
	var rep2 *loadgenReport
	wg.Add(1)
	go func() {
		defer wg.Done()
		rep2, _ = loadgen(io.Discard, loadgenConfig{
			baseURL: baseURL, clients: 4, requests: 16, batch: 1, seed: 11,
			problems: []string{"SPE2"}, quiet: true,
		})
	}()
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	if rep2 != nil {
		if got := rep2.ok + rep2.refused + rep2.failed; got != 16 {
			t.Errorf("drain burst accounted for %d of 16 requests", got)
		}
	}
	if _, err := http.Get(baseURL + "/healthz"); err == nil {
		t.Error("server still serving after shutdown")
	}
}

// TestServerLoadgenBinaryWire drives the same end-to-end stack over the
// zero-copy binary frame protocol, including structural drift (base_fp +
// edits frames), and checks the arena-pooled request memory all came
// back once the run drains.
func TestServerLoadgenBinaryWire(t *testing.T) {
	s, err := server.New(server.Config{
		Procs:    2,
		CacheCap: 8,
		Coalesce: server.CoalesceConfig{Window: 2 * time.Millisecond, Width: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	baseURL := "http://" + s.Addr()

	var out strings.Builder
	rep, err := loadgen(&out, loadgenConfig{
		baseURL:    baseURL,
		clients:    6,
		requests:   48,
		batch:      2,
		seed:       13,
		problems:   []string{"SPE2", "5-PT"},
		driftRate:  0.3,
		driftEdits: 2,
		wire:       wireBinary,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ok != 48 || rep.failed != 0 || rep.refused != 0 {
		t.Fatalf("binary loadgen report: %d ok, %d refused, %d failed (%s), want 48 clean",
			rep.ok, rep.refused, rep.failed, rep.failMsg)
	}
	if !strings.Contains(out.String(), "binary wire") {
		t.Errorf("loadgen header does not name the wire format:\n%s", out.String())
	}
	st := s.Stats()
	if st.FactorCache.Hits == 0 {
		t.Error("no factor-cache hits: binary by-fingerprint resubmission is not reaching the server")
	}
	if st.Arena.Gets == 0 {
		t.Error("binary requests were served without touching the request arena pool")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := s.Stats(); st.Arena.Outstanding != 0 {
		t.Errorf("%d request arenas still outstanding after drain", st.Arena.Outstanding)
	}
}
