package main

import (
	"context"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"doconsider/internal/problems"
	"doconsider/internal/server"
)

// TestServeDriftSmoke drives the in-process serving demo with a
// drifting workload and checks the drift/repair reporting surfaces.
func TestServeDriftSmoke(t *testing.T) {
	var out strings.Builder
	err := serve(&out, serveConfig{
		procs: 2, clients: 4, requests: 40, batch: 2,
		cacheCap: 8, window: time.Millisecond, width: 16,
		seed: 7, compare: false, kind: "auto",
		driftRate: 0.5, driftEdits: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"drifting workload", "drift:", "drifted requests"} {
		if !strings.Contains(got, want) {
			t.Errorf("serve drift output missing %q:\n%s", want, got)
		}
	}
}

// TestDriftTemplateNoEditsFallsThrough pins the degenerate drift paths
// that once deadlocked: a template whose fingerprint is not yet known
// (and one whose structure admits no drift) must fall through to a
// plain request, not block on the template lock.
func TestDriftTemplateNoEditsFallsThrough(t *testing.T) {
	s, err := server.New(server.Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	p := problems.MustGet("5-PT")
	tmpl := &solveTemplate{cur: p.L, wf: p.Wf} // fp never registered
	cfg := loadgenConfig{
		baseURL: "http://" + s.Addr(), clients: 1, requests: 1, batch: 1,
		driftRate: 1, driftEdits: 3,
	}
	rng := rand.New(rand.NewSource(9))
	b := randomBatch(rng, 1, p.L.N)

	done := make(chan error, 1)
	go func() {
		_, status, msg, attempted, fellBack, err := driftTemplate(http.DefaultClient, &cfg, tmpl, b, rng)
		if err == nil && status != http.StatusOK {
			t.Errorf("drift fall-through: status %d: %s", status, msg)
		}
		if attempted {
			t.Error("fall-through wrongly counted as an attempted drift")
		}
		if fellBack {
			t.Error("fall-through wrongly reported a 404 fallback")
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("driftTemplate deadlocked on the degenerate (no-fingerprint) path")
	}
}
