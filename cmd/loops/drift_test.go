package main

import (
	"context"
	"strings"
	"testing"
	"time"

	"doconsider/client"
	"doconsider/internal/problems"
	"doconsider/internal/server"
	"doconsider/internal/synthetic"
	"math/rand"
)

// TestServeDriftSmoke drives the in-process serving demo with a
// drifting workload and checks the drift/repair reporting surfaces.
func TestServeDriftSmoke(t *testing.T) {
	var out strings.Builder
	err := serve(&out, serveConfig{
		procs: 2, clients: 4, requests: 40, batch: 2,
		cacheCap: 8, window: time.Millisecond, width: 16,
		seed: 7, compare: false, kind: "auto",
		driftRate: 0.5, driftEdits: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"drifting workload", "drift:", "drifted requests"} {
		if !strings.Contains(got, want) {
			t.Errorf("serve drift output missing %q:\n%s", want, got)
		}
	}
}

// TestDriftFactorNoFingerprintFallsThrough pins the degenerate drift
// path that once deadlocked: a factor whose fingerprint is not yet
// known must fall through to a plain full submission (the loadgen
// checks State().Fp before attempting a drift), complete without
// blocking, and commit the returned fingerprint — after which a real
// drift request round-trips.
func TestDriftFactorNoFingerprintFallsThrough(t *testing.T) {
	s, err := server.New(server.Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	p := problems.MustGet("5-PT")
	f := client.NewFactor(p.L, true) // fp never registered
	cli := client.New("http://" + s.Addr())
	rng := rand.New(rand.NewSource(9))
	b := randomBatch(rng, 1, p.L.N)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if st := f.State(); st.Fp != "" {
		t.Fatalf("fresh factor has fingerprint %q, want none", st.Fp)
	}
	resp, err := f.Solve(ctx, cli, b)
	if err != nil {
		t.Fatalf("fall-through full submission: %v", err)
	}
	if resp.Fp == "" || f.Fp() != resp.Fp {
		t.Fatalf("fingerprint not committed: response %q, factor %q", resp.Fp, f.Fp())
	}

	// With the base registered, a real drift request round-trips and
	// advances the factor to the server's new fingerprint.
	st := f.State()
	edits := synthetic.DriftLower(rng, st.Cur, p.Wf, 3, 0.3)
	if len(edits) == 0 {
		t.Skip("structure admits no drift with this seed")
	}
	dresp, fellBack, err := f.Drift(ctx, cli, st, edits, b)
	if err != nil {
		t.Fatalf("drift request: %v", err)
	}
	if fellBack {
		t.Error("drift against a registered base fell back to a full ship")
	}
	if dresp.Fp == st.Fp || f.Fp() != dresp.Fp {
		t.Fatalf("drift did not advance the fingerprint: base %q, response %q, factor %q",
			st.Fp, dresp.Fp, f.Fp())
	}
}
