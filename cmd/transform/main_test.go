package main

import (
	"bytes"
	"strings"
	"testing"
)

const loopSrc = `doconsider i = 0, n-1
  x(i) = x(i) + b(i)*x(ia(i))
enddo
`

func TestRunStdin(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-func", "MyLoop"}, strings.NewReader(loopSrc), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"func MyLoop(", `writes "x"`, "core.New(deps"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunParseError(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader("not a loop"), &out); err == nil {
		t.Error("accepted garbage input")
	}
}

func TestRunMissingFile(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"/no/such/file.loop"}, strings.NewReader(""), &out); err == nil {
		t.Error("accepted missing file")
	}
}
