// Command transform runs the doconsider source-to-source transformation on
// a loop read from a file or stdin: it parses the Fortran-style loop,
// reports the dependence analysis, and prints the generated Go code (the
// structures of the paper's Figures 4 and 7).
//
// Usage:
//
//	transform [-func Name] [file.loop]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"doconsider/internal/transform"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "transform:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, w io.Writer) error {
	fs := flag.NewFlagSet("transform", flag.ContinueOnError)
	funcName := fs.String("func", "RunLoop", "name of the generated Go function")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var src []byte
	var err error
	if fs.NArg() > 0 {
		src, err = os.ReadFile(fs.Arg(0))
	} else {
		src, err = io.ReadAll(stdin)
	}
	if err != nil {
		return err
	}
	loop, err := transform.Parse(string(src))
	if err != nil {
		return err
	}
	an, err := transform.Analyze(loop)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "// doconsider analysis: writes %q, %d self read(s), %d indirect read(s)\n",
		an.Written, an.SelfReads, an.IndirectReads)
	fmt.Fprintf(w, "// subscript-carrying arrays: %v\n\n", an.IntArrays)
	fmt.Fprint(w, transform.GenerateGo(an, *funcName))
	return nil
}
