package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"doconsider/internal/sparse"
)

func TestRunStats(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-name", "20-3-2", "-seed", "7"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"workload 20-3-2", "indices        400", "wavefronts"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWritesMatrix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.txt")
	var buf bytes.Buffer
	if err := run([]string{"-name", "10-2-2", "-o", path}, &buf); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	a, err := sparse.ReadText(f)
	if err != nil {
		t.Fatal(err)
	}
	if a.N != 100 {
		t.Errorf("matrix order %d, want 100", a.N)
	}
}

func TestRunSpy(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-name", "12-3-2", "-stats=false", "-spy"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "144 x 144") {
		t.Errorf("spy header missing:\n%s", buf.String())
	}
}

func TestRunDrift(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-name", "20-3-2", "-seed", "7", "-drift-steps", "3", "-drift-edits", "5"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"drift simulation: 3 steps", "drift summary:", "repair"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Invalid drift knobs are usage errors.
	if err := run([]string{"-name", "10-2-2", "-drift-rate", "2"}, &buf); err == nil {
		t.Error("accepted drift rate > 1")
	}
	if err := run([]string{"-name", "10-2-2", "-drift-steps", "2", "-drift-edits", "0"}, &buf); err == nil {
		t.Error("accepted zero drift edits")
	}
}

func TestRunBadArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-name", "nonsense"}, &buf); err == nil {
		t.Error("accepted bad workload name")
	}
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Error("accepted unknown flag")
	}
}
