// Command workgen generates synthetic workload matrices with the paper's
// Section 4.1 generator (Poisson out-degree, geometric Manhattan link
// distance on a 2-D mesh) and either prints structure statistics or dumps
// the matrix in triplet text form. With -drift-steps it additionally
// simulates a drifting workload: successive structural edit sets applied
// to the generated matrix, reporting for each step how the incremental
// re-inspection (internal/delta) repaired the schedule versus what a
// cold rebuild costs.
//
// Usage:
//
//	workgen -name 65-4-3 [-seed 1989] [-stats] [-o matrix.txt] \
//	    [-drift-steps 8] [-drift-rate 1] [-drift-edits 8]
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"doconsider/internal/delta"
	"doconsider/internal/planner"
	"doconsider/internal/schedule"
	"doconsider/internal/sparse"
	"doconsider/internal/supernode"
	"doconsider/internal/synthetic"
	"doconsider/internal/wavefront"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "workgen:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("workgen", flag.ContinueOnError)
	name := fs.String("name", "65-4-3", "workload label: mesh-degree-distance")
	seed := fs.Int64("seed", 1989, "generator seed")
	stats := fs.Bool("stats", true, "print structure statistics")
	spy := fs.Bool("spy", false, "print an ASCII density plot of the matrix")
	out := fs.String("o", "", "write the matrix in triplet text form to this file")
	driftSteps := fs.Int("drift-steps", 0, "simulate this many structural drift steps")
	driftRate := fs.Float64("drift-rate", 1, "probability each drift step actually edits the structure")
	driftEdits := fs.Int("drift-edits", 8, "row edits per drift step")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *driftRate < 0 || *driftRate > 1 {
		return fmt.Errorf("-drift-rate must be in [0,1], got %g", *driftRate)
	}
	if *driftSteps > 0 && *driftEdits < 1 {
		return fmt.Errorf("-drift-edits must be positive, got %d", *driftEdits)
	}

	cfg, err := synthetic.Parse(*name, *seed)
	if err != nil {
		return err
	}
	a := synthetic.Generate(cfg)
	if *stats {
		s := synthetic.Summarize(a)
		deps := wavefront.FromLower(a)
		wf, err := wavefront.Compute(deps)
		if err != nil {
			return err
		}
		hist := wavefront.Histogram(wf)
		maxw := 0
		for _, h := range hist {
			if h > maxw {
				maxw = h
			}
		}
		fmt.Fprintf(w, "workload %s (seed %d)\n", cfg.Name(), cfg.Seed)
		fmt.Fprintf(w, "  indices        %d\n", s.N)
		fmt.Fprintf(w, "  links          %d (avg degree %.2f)\n", s.Links, s.AvgDegree)
		fmt.Fprintf(w, "  max row nnz    %d\n", s.MaxRowNNZ)
		fmt.Fprintf(w, "  source rows    %d (no dependences)\n", s.EmptyRows)
		fmt.Fprintf(w, "  avg row band   %.1f\n", s.AvgRowBand)
		fmt.Fprintf(w, "  wavefronts     %d (max width %d)\n", len(hist), maxw)
		part := supernode.Detect(deps, supernode.Config{})
		ps := part.Stats()
		unitWf, err := wavefront.Compute(part.Compress(deps))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  supernodes     %d (%d of %d rows fused, max width %d, %d compressed levels)\n",
			ps.Nodes, ps.FusedRows, ps.Rows, ps.MaxWidth, len(wavefront.Histogram(unitWf)))
	}
	if *spy {
		if err := a.Spy(w, 64); err != nil {
			return err
		}
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := a.WriteText(f); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d x %d matrix (%d entries) to %s\n", a.N, a.M, a.NNZ(), *out)
	}
	if *driftSteps > 0 {
		return driftReport(w, a, cfg.Seed, *driftSteps, *driftRate, *driftEdits)
	}
	return nil
}

// driftReport simulates a drifting workload over the generated structure:
// each step edits the nonzero pattern (level-compatible fill drift,
// synthetic.DriftLower) and repairs the inspector output through
// internal/delta, reporting the repair cone and cost against a cold
// rebuild — the per-step view of the amortization the serving path's
// base_fp+edits form exploits.
func driftReport(w io.Writer, a *sparse.CSR, seed int64, steps int, rate float64, edits int) error {
	deps := wavefront.FromLower(a)
	wf, err := wavefront.Compute(deps)
	if err != nil {
		return err
	}
	st := delta.NewState(deps, wf, schedule.Global(wf, 4))
	st.Reverse() // warm, as a resident plan cache entry would be
	rng := rand.New(rand.NewSource(seed + 1))
	cur := a
	fmt.Fprintf(w, "\ndrift simulation: %d steps, rate %.2f, %d row edits/step (4 procs)\n", steps, rate, edits)
	fmt.Fprintf(w, "%5s %7s %7s %6s %6s %12s %12s %s\n",
		"step", "edited", "cone", "moved", "levels", "repair", "rebuild", "outcome")
	var repairs, rebuilds int
	for step := 1; step <= steps; step++ {
		if rng.Float64() >= rate {
			fmt.Fprintf(w, "%5d %7s %7s %6s %6d %12s %12s %s\n",
				step, "-", "-", "-", len(wavefront.Histogram(st.Wf)), "-", "-", "no drift")
			continue
		}
		es := synthetic.DriftLower(rng, cur, st.Wf, edits, 0.3)
		if len(es) == 0 {
			fmt.Fprintf(w, "%5d %7s %7s %6s %6d %12s %12s %s\n",
				step, "0", "-", "-", len(wavefront.Histogram(st.Wf)), "-", "-", "structure admits no drift")
			continue
		}
		edited, err := cur.ApplyRowEdits(es)
		if err != nil {
			return err
		}
		changed, ok := delta.DiffFactor(st.Deps, edited, true, 0)
		if !ok {
			return fmt.Errorf("workgen: drift diff failed")
		}
		t0 := time.Now()
		rebuildDeps := wavefront.FromLower(edited)
		rebuildWf, err := wavefront.Compute(rebuildDeps)
		if err != nil {
			return err
		}
		rebuildSched := schedule.Global(rebuildWf, 4)
		rebuildCost := time.Since(t0)

		dec := planner.PlanRepair(edited.N, st.Deps.Edges(), len(changed), planner.Default())
		outcome := "repair"
		t0 = time.Now()
		var next *delta.State
		var stats delta.Stats
		if dec.Repair {
			newDeps := delta.FactorDeps(st.Deps, edited, true, changed)
			next, stats, err = st.Repair(newDeps, changed, delta.Options{MaxCone: dec.MaxCone})
			if err != nil {
				next = nil
			}
		}
		repairCost := time.Since(t0)
		if next == nil {
			outcome = "rebuild (planner declined or cone tripped)"
			next = delta.NewState(rebuildDeps, rebuildWf, rebuildSched)
			repairCost = rebuildCost
			rebuilds++
		} else {
			repairs++
			if stats.Reused {
				outcome = "repair (schedule reused)"
			}
		}
		fmt.Fprintf(w, "%5d %7d %7d %6d %6d %12s %12s %s\n",
			step, len(changed), stats.Cone, stats.Moved, len(wavefront.Histogram(next.Wf)),
			repairCost.Round(time.Microsecond), rebuildCost.Round(time.Microsecond), outcome)
		cur, st = edited, next
	}
	fmt.Fprintf(w, "drift summary: %d repaired, %d rebuilt over %d steps\n", repairs, rebuilds, steps)
	return nil
}
