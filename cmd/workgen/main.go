// Command workgen generates synthetic workload matrices with the paper's
// Section 4.1 generator (Poisson out-degree, geometric Manhattan link
// distance on a 2-D mesh) and either prints structure statistics or dumps
// the matrix in triplet text form.
//
// Usage:
//
//	workgen -name 65-4-3 [-seed 1989] [-stats] [-o matrix.txt]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"doconsider/internal/synthetic"
	"doconsider/internal/wavefront"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "workgen:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("workgen", flag.ContinueOnError)
	name := fs.String("name", "65-4-3", "workload label: mesh-degree-distance")
	seed := fs.Int64("seed", 1989, "generator seed")
	stats := fs.Bool("stats", true, "print structure statistics")
	spy := fs.Bool("spy", false, "print an ASCII density plot of the matrix")
	out := fs.String("o", "", "write the matrix in triplet text form to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg, err := synthetic.Parse(*name, *seed)
	if err != nil {
		return err
	}
	a := synthetic.Generate(cfg)
	if *stats {
		s := synthetic.Summarize(a)
		deps := wavefront.FromLower(a)
		wf, err := wavefront.Compute(deps)
		if err != nil {
			return err
		}
		hist := wavefront.Histogram(wf)
		maxw := 0
		for _, h := range hist {
			if h > maxw {
				maxw = h
			}
		}
		fmt.Fprintf(w, "workload %s (seed %d)\n", cfg.Name(), cfg.Seed)
		fmt.Fprintf(w, "  indices        %d\n", s.N)
		fmt.Fprintf(w, "  links          %d (avg degree %.2f)\n", s.Links, s.AvgDegree)
		fmt.Fprintf(w, "  max row nnz    %d\n", s.MaxRowNNZ)
		fmt.Fprintf(w, "  source rows    %d (no dependences)\n", s.EmptyRows)
		fmt.Fprintf(w, "  avg row band   %.1f\n", s.AvgRowBand)
		fmt.Fprintf(w, "  wavefronts     %d (max width %d)\n", len(hist), maxw)
	}
	if *spy {
		if err := a.Spy(w, 64); err != nil {
			return err
		}
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := a.WriteText(f); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d x %d matrix (%d entries) to %s\n", a.N, a.M, a.NNZ(), *out)
	}
	return nil
}
