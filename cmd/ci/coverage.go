package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// coverageMain is the `ci coverage` subcommand: it runs the test suite
// with a coverage profile, extracts the total statement coverage, and
// fails when it drops below the checked-in floor — the gate that keeps
// "add code without tests" from silently eroding the suite. With
// -update the floor is rewritten from the observed total minus a margin
// (so routine churn doesn't flap the gate).
func coverageMain(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ci coverage", flag.ContinueOnError)
	floorPath := fs.String("floor", "ci/coverage_floor.txt", "file holding the minimum total coverage percentage")
	profile := fs.String("profile", "coverage.out", "coverage profile output path")
	update := fs.Bool("update", false, "rewrite the floor from this run instead of gating")
	margin := fs.Float64("margin", 2.0, "with -update: percentage points subtracted from the observed total")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cmd := exec.Command("go", "test", "-coverprofile", *profile, "./...")
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		os.Stdout.Write(out)
		return fmt.Errorf("go test -coverprofile: %w", err)
	}

	total, err := coverageTotal(*profile)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "ci: total statement coverage %.1f%%\n", total)

	if *update {
		floor := math.Floor((total-*margin)*10) / 10
		if floor < 0 {
			floor = 0
		}
		data := fmt.Sprintf("%.1f\n", floor)
		if err := os.WriteFile(*floorPath, []byte(data), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "ci: wrote coverage floor %.1f%% to %s\n", floor, *floorPath)
		return nil
	}

	floor, err := readCoverageFloor(*floorPath)
	if err != nil {
		return err
	}
	if total < floor {
		return fmt.Errorf("total coverage %.1f%% is below the floor %.1f%% (%s); add tests or, if the drop is justified, update the floor with `go run ./cmd/ci coverage -update`",
			total, floor, *floorPath)
	}
	fmt.Fprintf(w, "ci: coverage gate passed (floor %.1f%%)\n", floor)
	return nil
}

// coverageTotal runs `go tool cover -func` over the profile and parses
// the "total:" line.
func coverageTotal(profile string) (float64, error) {
	cmd := exec.Command("go", "tool", "cover", "-func", profile)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return 0, fmt.Errorf("go tool cover: %w", err)
	}
	for _, line := range strings.Split(string(out), "\n") {
		fields := strings.Fields(line)
		if len(fields) >= 3 && fields[0] == "total:" {
			return strconv.ParseFloat(strings.TrimSuffix(fields[len(fields)-1], "%"), 64)
		}
	}
	return 0, fmt.Errorf("no total: line in go tool cover output")
}

// readCoverageFloor parses the floor file: one percentage on the first
// non-comment line.
func readCoverageFloor(path string) (float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(line, "%"), 64)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", path, err)
		}
		return v, nil
	}
	return 0, fmt.Errorf("%s: no coverage floor found", path)
}
