package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGateNamesEveryOffender pins the regression-gate contract that a
// multi-benchmark regression surfaces every offender with baseline vs
// observed allocs/op, not just the first one found.
func TestGateNamesEveryOffender(t *testing.T) {
	records := []benchRecord{
		{Name: "BenchmarkA-4", Iters: 1, Metrics: map[string]float64{"allocs/op": 20}},
		{Name: "BenchmarkB", Iters: 1, Metrics: map[string]float64{"allocs/op": 9}},
		{Name: "BenchmarkC", Iters: 1, Metrics: map[string]float64{"allocs/op": 1}},
	}
	base := baseline{Threshold: 0.3, AllocsPerOp: map[string]float64{
		"BenchmarkA": 10, // regressed 2x
		"BenchmarkB": 3,  // regressed 3x
		"BenchmarkC": 1,  // fine
		"BenchmarkD": 5,  // did not run
	}}
	problems := gate(records, base)
	if len(problems) != 3 {
		t.Fatalf("gate found %d problems, want 3: %v", len(problems), problems)
	}
	joined := strings.Join(problems, "\n")
	for _, want := range []string{
		"BenchmarkA", "baseline 10", "regressed to 20",
		"BenchmarkB", "baseline 3", "regressed to 9",
		"BenchmarkD", "did not run",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("gate output missing %q:\n%s", want, joined)
		}
	}
	if strings.Contains(joined, "BenchmarkC") {
		t.Errorf("gate flagged the healthy BenchmarkC:\n%s", joined)
	}
}

func TestReadCoverageFloor(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "floor.txt")
	if err := os.WriteFile(path, []byte("# minimum total coverage\n71.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	v, err := readCoverageFloor(path)
	if err != nil || v != 71.5 {
		t.Fatalf("floor = %v, %v; want 71.5", v, err)
	}
	if err := os.WriteFile(path, []byte("nonsense\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readCoverageFloor(path); err == nil {
		t.Error("accepted a malformed floor file")
	}
	if _, err := readCoverageFloor(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("accepted a missing floor file")
	}
}

func TestCompareRendersTable(t *testing.T) {
	dir := t.TempDir()
	artPath := filepath.Join(dir, "BENCH_ci.json")
	basePath := filepath.Join(dir, "baseline.json")
	art := artifact{
		GoVersion: "go1.24", GOOS: "linux", GOARCH: "amd64", Count: 2,
		Records: []benchRecord{
			{Name: "BenchmarkX-4", Iters: 1, Metrics: map[string]float64{"ns/op": 1500, "allocs/op": 7}},
			{Name: "BenchmarkX-4", Iters: 1, Metrics: map[string]float64{"ns/op": 1200, "allocs/op": 6}},
			{Name: "BenchmarkY", Iters: 1, Metrics: map[string]float64{"ns/op": 900, "allocs/op": 4}},
		},
	}
	data, _ := json.Marshal(art)
	if err := os.WriteFile(artPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	base, _ := json.Marshal(baseline{Threshold: 0.3, AllocsPerOp: map[string]float64{
		"BenchmarkX": 6,
		"BenchmarkZ": 2, // missing from the artifact
	}})
	if err := os.WriteFile(basePath, base, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := compareMain([]string{"-artifact", artPath, "-baseline", basePath}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"| benchmark |",
		"| BenchmarkX | 1.2e-06 | 6 | 6 | +0.0% |",
		"| BenchmarkY | 9e-07 | 4 | - | - |",
		"missing gated benchmark:** BenchmarkZ",
		// The inverse listing: BenchmarkY ran but is gated by nothing.
		"present only in candidate run",
		"- BenchmarkY",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}
}
