package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// compareMain is the `ci compare` subcommand: it renders a
// benchstat-style markdown table of a bench artifact (BENCH_ci.json)
// against the checked-in baseline — observed sec/op and allocs/op per
// benchmark, with the baseline allocs and the delta for the gated ones.
// The nightly workflow appends the output to $GITHUB_STEP_SUMMARY so a
// drifting benchmark is visible without downloading the artifact.
func compareMain(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ci compare", flag.ContinueOnError)
	artPath := fs.String("artifact", "BENCH_ci.json", "bench artifact to compare")
	basePath := fs.String("baseline", "ci/bench_baseline.json", "baseline file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	data, err := os.ReadFile(*artPath)
	if err != nil {
		return err
	}
	var art artifact
	if err := json.Unmarshal(data, &art); err != nil {
		return fmt.Errorf("%s: %w", *artPath, err)
	}
	base, err := loadBaseline(*basePath)
	if err != nil {
		return err
	}

	// Collapse repeated runs to the per-benchmark minimum (the same
	// least-noise convention the gate uses), normalizing GOMAXPROCS
	// suffixes through the baseline names where one matches.
	type row struct {
		name            string
		secPerOp        float64
		allocsPerOp     float64
		hasAllocs       bool
		baseline        float64
		gated           bool
		deltaPct        float64
		exceedThreshold bool
	}
	byName := map[string]*row{}
	var order []string
	gatedNames := map[string]bool{}
	for name := range base.AllocsPerOp {
		gatedNames[name] = true
	}
	for name := range base.AllocsBudget {
		gatedNames[name] = true
	}
	for name := range base.NsPerOp {
		gatedNames[name] = true
	}
	for _, rec := range art.Records {
		name := rec.Name
		for baseName := range gatedNames {
			if matchesName(rec.Name, baseName) {
				name = baseName
				break
			}
		}
		r := byName[name]
		if r == nil {
			r = &row{name: name, secPerOp: math.Inf(1), allocsPerOp: math.Inf(1)}
			byName[name] = r
			order = append(order, name)
		}
		if v, ok := rec.Metrics["ns/op"]; ok && v < r.secPerOp*1e9 {
			r.secPerOp = v / 1e9
		}
		if v, ok := rec.Metrics["allocs/op"]; ok {
			r.hasAllocs = true
			if v < r.allocsPerOp {
				r.allocsPerOp = v
			}
		}
	}
	for name, want := range base.AllocsPerOp {
		if r, ok := byName[name]; ok {
			r.gated = true
			r.baseline = want
			if want > 0 {
				r.deltaPct = 100 * (r.allocsPerOp - want) / want
			} else if r.allocsPerOp > 0 {
				r.deltaPct = math.Inf(1)
			}
			r.exceedThreshold = r.allocsPerOp > want*(1+base.Threshold)
		}
	}
	for name, want := range base.AllocsBudget {
		if r, ok := byName[name]; ok {
			r.gated = true
			r.baseline = want
			if want > 0 {
				r.deltaPct = 100 * (r.allocsPerOp - want) / want
			} else if r.allocsPerOp > 0 {
				r.deltaPct = math.Inf(1)
			}
			// Budgets are exact: any mismatch is flagged, not just drift
			// beyond the threshold.
			r.exceedThreshold = r.allocsPerOp != want
		}
	}
	sort.Strings(order)

	fmt.Fprintf(w, "## Benchmark comparison vs %s\n\n", *basePath)
	fmt.Fprintf(w, "%s, %s/%s, count %d; gate threshold +%.0f%% allocs/op\n\n",
		art.GoVersion, art.GOOS, art.GOARCH, art.Count, 100*base.Threshold)
	fmt.Fprintln(w, "| benchmark | sec/op | allocs/op | baseline allocs | Δ allocs |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---:|")
	for _, name := range order {
		r := byName[name]
		sec := "-"
		if !math.IsInf(r.secPerOp, 1) {
			sec = fmt.Sprintf("%.6g", r.secPerOp)
		}
		allocs := "-"
		if r.hasAllocs && !math.IsInf(r.allocsPerOp, 1) {
			allocs = fmt.Sprintf("%.0f", r.allocsPerOp)
		}
		baseCol, deltaCol := "-", "-"
		if r.gated {
			baseCol = fmt.Sprintf("%.0f", r.baseline)
			deltaCol = fmt.Sprintf("%+.1f%%", r.deltaPct)
			if r.exceedThreshold {
				deltaCol += " ⚠"
			}
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s |\n", r.name, sec, allocs, baseCol, deltaCol)
	}
	// A gated benchmark missing from the artifact is worth flagging here
	// too — the gate fails the build on it, the summary explains it.
	var missing []string
	for name := range gatedNames {
		if _, ok := byName[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(w, "\n**missing gated benchmark:** %s\n", name)
	}
	// The inverse direction: benchmarks the candidate run produced that
	// the baseline doesn't know about. New benchmarks land here until
	// someone decides whether to gate them — surfacing the list keeps
	// that decision visible instead of silently accumulating ungated
	// hot paths.
	var candidateOnly []string
	for name := range byName {
		if !gatedNames[name] {
			candidateOnly = append(candidateOnly, name)
		}
	}
	sort.Strings(candidateOnly)
	if len(candidateOnly) > 0 {
		fmt.Fprintf(w, "\n**present only in candidate run (not gated by the baseline):**\n\n")
		for _, name := range candidateOnly {
			fmt.Fprintf(w, "- %s\n", name)
		}
	}
	return nil
}
