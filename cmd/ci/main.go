// Command ci mirrors the repository's CI pipeline so it runs identically
// on a laptop and in GitHub Actions.
//
// Subcommands:
//
//	bench     run the benchmark suite at -benchtime 1x, emit a
//	          benchstat-comparable JSON artifact (BENCH_ci.json) and
//	          gate allocs/op of the hot-path benchmarks against a
//	          checked-in baseline: a >threshold regression — e.g. the
//	          pooled executor's 0 allocs/op Run picking up allocations —
//	          fails the build. Benchmarks listed under allocs_budget are
//	          held to an exact contract instead: any mismatch, in either
//	          direction, fails. With -update the drift baselines are
//	          rewritten from the observed values (budgets never are).
//	coverage  run `go test -coverprofile` across ./... and fail if the
//	          total statement coverage drops below the floor checked in
//	          at ci/coverage_floor.txt. With -update the floor is
//	          rewritten from the observed total (minus a margin).
//	compare   render a benchstat-style markdown comparison of a bench
//	          artifact against the checked-in baseline (the nightly
//	          workflow posts it as the job summary).
//
// Usage:
//
//	go run ./cmd/ci bench [-count 5] [-out BENCH_ci.json] \
//	    [-baseline ci/bench_baseline.json] [-threshold 0.30] [-update]
//	go run ./cmd/ci coverage [-floor ci/coverage_floor.txt] \
//	    [-profile coverage.out] [-update]
//	go run ./cmd/ci compare [-artifact BENCH_ci.json] \
//	    [-baseline ci/bench_baseline.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ci:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: ci <bench|coverage|compare> [flags]")
	}
	switch args[0] {
	case "bench":
		return benchMain(args[1:])
	case "coverage":
		return coverageMain(args[1:], os.Stdout)
	case "compare":
		return compareMain(args[1:], os.Stdout)
	default:
		return fmt.Errorf("usage: ci <bench|coverage|compare> [flags]; unknown subcommand %q", args[0])
	}
}

// benchRecord is one parsed benchmark result line.
type benchRecord struct {
	Name    string             `json:"name"`  // as printed, including -GOMAXPROCS suffix
	Iters   int64              `json:"iters"` //nolint: one at -benchtime 1x
	Metrics map[string]float64 `json:"metrics"`
}

// artifact is the BENCH_ci.json schema: structured records for tooling
// plus the raw `go test -bench` text, which benchstat consumes directly.
type artifact struct {
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	Count     int           `json:"count"`
	Records   []benchRecord `json:"records"`
	Text      string        `json:"text"`
}

// baseline is the checked-in regression reference. AllocsPerOp maps
// normalized benchmark names (no -GOMAXPROCS suffix) to the expected
// allocs/op; a run exceeding a value by more than Threshold fails.
// NsPerOp gates wall time the same way under its own (much coarser)
// NsThreshold: allocation counts are deterministic, while ns/op moves
// with the machine, so the time gate only catches catastrophic
// regressions — a fused kernel falling back to row-wise dispatch, not a
// few percent of jitter.
// AllocsBudget is different in kind from AllocsPerOp: it is an exact
// per-benchmark allocation contract, not a drift gate. A budgeted
// benchmark must report exactly the pinned allocs/op — one allocation
// over the zero-alloc serving path fails the build with no threshold,
// and an improvement below the pin also fails, so the contract is
// re-pinned deliberately rather than rotting. -update never rewrites
// budgets for the same reason.
type baseline struct {
	Threshold    float64            `json:"threshold"`
	NsThreshold  float64            `json:"ns_threshold,omitempty"`
	AllocsPerOp  map[string]float64 `json:"allocs_per_op"`
	AllocsBudget map[string]float64 `json:"allocs_budget,omitempty"`
	NsPerOp      map[string]float64 `json:"ns_per_op,omitempty"`
}

func benchMain(args []string) error {
	fs := flag.NewFlagSet("ci bench", flag.ContinueOnError)
	count := fs.Int("count", 5, "benchmark repetitions (benchstat input)")
	out := fs.String("out", "BENCH_ci.json", "artifact output path")
	basePath := fs.String("baseline", "ci/bench_baseline.json", "baseline file for the regression gate")
	threshold := fs.Float64("threshold", 0, "override the baseline's regression threshold (0 = use the file's)")
	update := fs.Bool("update", false, "rewrite the baseline from this run instead of gating")
	if err := fs.Parse(args); err != nil {
		return err
	}

	text, runErr := runBenchmarks(*count)
	// Write the artifact even when the bench run failed: partial results
	// are exactly what a broken CI run needs for diagnosis (the workflow
	// uploads it with `if: always()`).
	records := parseBench(text)
	art := artifact{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Count:     *count,
		Records:   records,
		Text:      text,
	}
	if err := writeArtifact(*out, art); err != nil {
		if runErr != nil {
			return fmt.Errorf("%w (and writing %s failed: %v)", runErr, *out, err)
		}
		return err
	}
	fmt.Printf("ci: wrote %s (%d benchmark results)\n", *out, len(records))
	if runErr != nil {
		return runErr
	}
	if len(records) == 0 {
		return fmt.Errorf("no benchmark results parsed — did the bench run fail?")
	}

	if *update {
		base, err := loadBaseline(*basePath)
		if err != nil {
			return err
		}
		for name := range base.AllocsPerOp {
			v, ok := minMetric(records, name, "allocs/op")
			if !ok {
				return fmt.Errorf("baseline benchmark %q did not run; cannot update", name)
			}
			base.AllocsPerOp[name] = v
		}
		for name := range base.NsPerOp {
			v, ok := minMetric(records, name, "ns/op")
			if !ok {
				return fmt.Errorf("baseline benchmark %q did not run; cannot update", name)
			}
			base.NsPerOp[name] = v
		}
		// Budgets are pinned contracts, never refreshed from a run; an
		// -update that breaks one must fail loudly, not paper over it.
		if problems := gateBudgets(records, base); len(problems) > 0 {
			return fmt.Errorf("allocation budgets are exact contracts and are not rewritten by -update; fix the regression or re-pin the budget by hand:\n  %s",
				strings.Join(problems, "\n  "))
		}
		if err := writeBaseline(*basePath, base); err != nil {
			return err
		}
		fmt.Printf("ci: updated %s\n", *basePath)
		return nil
	}

	base, err := loadBaseline(*basePath)
	if err != nil {
		return err
	}
	if *threshold > 0 {
		base.Threshold = *threshold
	}
	problems := gate(records, base)
	if len(problems) > 0 {
		// One message naming every offender with baseline vs observed, so
		// a multi-benchmark regression is diagnosed from a single failure
		// line instead of one fix-rerun cycle per benchmark.
		return fmt.Errorf("benchmark regression gate failed (%d problems):\n  %s",
			len(problems), strings.Join(problems, "\n  "))
	}
	fmt.Printf("ci: regression gate passed (%d alloc-gated, %d time-gated, %d exact-budget benchmarks, thresholds +%.0f%% / +%.0f%%)\n",
		len(base.AllocsPerOp), len(base.NsPerOp), len(base.AllocsBudget), 100*base.Threshold, 100*base.NsThreshold)
	return nil
}

// benchInvocations lists the go test runs the bench job performs: the
// kernel packages with every benchmark, and the repository root with the
// hot-path amortization benchmark the gate watches.
var benchInvocations = [][]string{
	{"-bench", ".",
		"./internal/executor", "./internal/schedule", "./internal/trisolve",
		"./internal/core", "./internal/plancache", "./internal/planner",
		"./internal/server", "./internal/delta", "./internal/router"},
	{"-bench", "^BenchmarkRuntimeRepeatedRun$", "."},
}

func runBenchmarks(count int) (string, error) {
	var sb strings.Builder
	for _, inv := range benchInvocations {
		args := append([]string{"test", "-run", "^$", "-benchtime", "1x",
			"-count", strconv.Itoa(count), "-benchmem"}, inv...)
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		sb.Write(out)
		if err != nil {
			return sb.String(), fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
		}
	}
	return sb.String(), nil
}

// parseBench extracts benchmark result lines from `go test -bench`
// output: name, iteration count, then (value, unit) pairs, including
// custom b.ReportMetric units.
func parseBench(text string) []benchRecord {
	var records []benchRecord
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		rec := benchRecord{Name: fields[0], Iters: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			rec.Metrics[fields[i+1]] = v
		}
		if len(rec.Metrics) > 0 {
			records = append(records, rec)
		}
	}
	return records
}

// matchesName reports whether a printed benchmark name matches a
// baseline name: exactly (GOMAXPROCS=1 runners print no suffix), or with
// a -<digits> GOMAXPROCS suffix appended. Matching in this direction —
// rather than stripping trailing digits from printed names — keeps
// baseline names that legitimately end in digits (e.g. "batch-8")
// unambiguous on every machine.
func matchesName(printed, base string) bool {
	if printed == base {
		return true
	}
	if !strings.HasPrefix(printed, base+"-") {
		return false
	}
	_, err := strconv.Atoi(printed[len(base)+1:])
	return err == nil
}

// minMetric returns the minimum of metric across the records matching
// the baseline name; with deterministic counters like allocs/op the
// minimum is the least-noisy representative of repeated runs.
func minMetric(records []benchRecord, name, metric string) (float64, bool) {
	best, found := math.Inf(1), false
	for _, r := range records {
		if !matchesName(r.Name, name) {
			continue
		}
		if v, ok := r.Metrics[metric]; ok {
			found = true
			if v < best {
				best = v
			}
		}
	}
	return best, found
}

// gate checks every baseline entry against the observed minima. A gated
// benchmark that did not run is itself a failure — otherwise deleting the
// benchmark would silently disable the gate.
func gate(records []benchRecord, base baseline) []string {
	var problems []string
	names := make([]string, 0, len(base.AllocsPerOp))
	for name := range base.AllocsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := base.AllocsPerOp[name]
		got, ok := minMetric(records, name, "allocs/op")
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: gated benchmark did not run or reported no allocs/op", name))
			continue
		}
		limit := want * (1 + base.Threshold)
		if got > limit {
			problems = append(problems, fmt.Sprintf(
				"%s: allocs/op regressed to %.0f (baseline %.0f, limit %.1f = +%.0f%%)",
				name, got, want, limit, 100*base.Threshold))
		}
	}
	problems = append(problems, gateBudgets(records, base)...)
	names = names[:0]
	for name := range base.NsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := base.NsPerOp[name]
		got, ok := minMetric(records, name, "ns/op")
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: gated benchmark did not run or reported no ns/op", name))
			continue
		}
		limit := want * (1 + base.NsThreshold)
		if got > limit {
			problems = append(problems, fmt.Sprintf(
				"%s: ns/op regressed to %.0f (baseline %.0f, limit %.0f = +%.0f%%)",
				name, got, want, limit, 100*base.NsThreshold))
		}
	}
	return problems
}

// gateBudgets checks the exact allocation contracts: a budgeted
// benchmark must report precisely the pinned allocs/op. There is no
// threshold in either direction — going over is a leak on a path the
// budget declares allocation-free (or fixed-cost), and going under
// means the pin is stale and must be re-tightened by hand so the
// contract keeps teeth.
func gateBudgets(records []benchRecord, base baseline) []string {
	var problems []string
	names := make([]string, 0, len(base.AllocsBudget))
	for name := range base.AllocsBudget {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		budget := base.AllocsBudget[name]
		got, ok := minMetric(records, name, "allocs/op")
		if !ok {
			problems = append(problems, fmt.Sprintf(
				"%s: budget-gated benchmark did not run or reported no allocs/op (budget is exactly %.0f allocs/op)",
				name, budget))
			continue
		}
		if got != budget {
			problems = append(problems, fmt.Sprintf(
				"%s: allocs/op = %.0f, budget pins exactly %.0f (no drift allowed; re-pin ci/bench_baseline.json deliberately if this is intended)",
				name, got, budget))
		}
	}
	return problems
}

func loadBaseline(path string) (baseline, error) {
	var base baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return base, err
	}
	if err := json.Unmarshal(data, &base); err != nil {
		return base, fmt.Errorf("%s: %w", path, err)
	}
	if base.Threshold <= 0 {
		base.Threshold = 0.30
	}
	if base.NsThreshold <= 0 {
		base.NsThreshold = 2.0
	}
	return base, nil
}

func writeBaseline(path string, base baseline) error {
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func writeArtifact(path string, art artifact) error {
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
