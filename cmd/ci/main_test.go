package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: doconsider
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRuntimeRepeatedRun/self-executing-4         	       1	    261000 ns/op	   66000 B/op	      14 allocs/op
BenchmarkRuntimeRepeatedRun/self-executing-4         	       1	    259000 ns/op	   66000 B/op	      15 allocs/op
BenchmarkRuntimeRepeatedRun/pooled-4                 	       1	    253000 ns/op	       0 B/op	       0 allocs/op
BenchmarkRuntimeRepeatedRun/pooled-4                 	       1	    251000 ns/op	       0 B/op	       0 allocs/op
BenchmarkAblationPartition/striped-4                 	       1	     90000 ns/op	     100 makespan
PASS
ok  	doconsider	1.0s
`

func TestParseBench(t *testing.T) {
	records := parseBench(sampleOutput)
	if len(records) != 5 {
		t.Fatalf("parsed %d records, want 5", len(records))
	}
	first := records[0]
	if first.Name != "BenchmarkRuntimeRepeatedRun/self-executing-4" || first.Iters != 1 {
		t.Fatalf("first record = %+v", first)
	}
	if first.Metrics["allocs/op"] != 14 || first.Metrics["ns/op"] != 261000 {
		t.Fatalf("first record metrics = %v", first.Metrics)
	}
	// Custom ReportMetric units parse too.
	last := records[4]
	if last.Metrics["makespan"] != 100 {
		t.Fatalf("custom metric lost: %v", last.Metrics)
	}
}

func TestMatchesName(t *testing.T) {
	for _, c := range []struct {
		printed, base string
		want          bool
	}{
		{"BenchmarkRuntimeRepeatedRun/pooled-4", "BenchmarkRuntimeRepeatedRun/pooled", true},
		{"BenchmarkRuntimeRepeatedRun/pooled-16", "BenchmarkRuntimeRepeatedRun/pooled", true},
		// GOMAXPROCS=1 runners print no suffix.
		{"BenchmarkRuntimeRepeatedRun/pooled", "BenchmarkRuntimeRepeatedRun/pooled", true},
		// Digit-suffixed sub-benchmark names match on every machine.
		{"BenchmarkSolveBatch/batch-8", "BenchmarkSolveBatch/batch-8", true},
		{"BenchmarkSolveBatch/batch-8-4", "BenchmarkSolveBatch/batch-8", true},
		// Inherent ambiguity in Go's format: "batch-8" could be
		// sub-benchmark "batch" at GOMAXPROCS=8, so it matches base
		// "batch" too (min across both is the conservative reading).
		{"BenchmarkSolveBatch/batch-8", "BenchmarkSolveBatch/batch", true},
		{"BenchmarkFoo/sub-case", "BenchmarkFoo/sub", false},
		{"BenchmarkOther/pooled-4", "BenchmarkRuntimeRepeatedRun/pooled", false},
	} {
		if got := matchesName(c.printed, c.base); got != c.want {
			t.Errorf("matchesName(%q, %q) = %v, want %v", c.printed, c.base, got, c.want)
		}
	}
}

func TestMinMetricUsesMinimumAcrossRuns(t *testing.T) {
	records := parseBench(sampleOutput)
	got, ok := minMetric(records, "BenchmarkRuntimeRepeatedRun/self-executing", "allocs/op")
	if !ok || got != 14 {
		t.Fatalf("min allocs = %v (ok=%v), want 14", got, ok)
	}
}

func testBaseline() baseline {
	return baseline{
		Threshold:   0.30,
		NsThreshold: 2.0,
		AllocsPerOp: map[string]float64{
			"BenchmarkRuntimeRepeatedRun/self-executing": 14,
			"BenchmarkRuntimeRepeatedRun/pooled":         0,
		},
		NsPerOp: map[string]float64{
			"BenchmarkRuntimeRepeatedRun/pooled": 251000,
		},
	}
}

func TestGatePassesAtBaseline(t *testing.T) {
	problems := gate(parseBench(sampleOutput), testBaseline())
	if len(problems) != 0 {
		t.Fatalf("gate failed on baseline-conformant run: %v", problems)
	}
}

// TestGateFailsOnInjectedAllocRegression is the acceptance check for the
// regression gate: the pooled hot path picking up a single allocation, or
// the self-executing path regressing beyond 30%, must fail.
func TestGateFailsOnInjectedAllocRegression(t *testing.T) {
	regressed := strings.ReplaceAll(sampleOutput,
		"253000 ns/op	       0 B/op	       0 allocs/op",
		"253000 ns/op	      64 B/op	       2 allocs/op")
	regressed = strings.ReplaceAll(regressed,
		"251000 ns/op	       0 B/op	       0 allocs/op",
		"251000 ns/op	      64 B/op	       2 allocs/op")
	problems := gate(parseBench(regressed), testBaseline())
	if len(problems) != 1 {
		t.Fatalf("gate problems = %v, want exactly the pooled regression", problems)
	}
	if !strings.Contains(problems[0], "pooled") || !strings.Contains(problems[0], "regressed to 2") {
		t.Fatalf("unexpected gate message: %s", problems[0])
	}

	// 14 -> 18 is within the 30% budget; 14 -> 19 is not.
	within := strings.ReplaceAll(sampleOutput, "14 allocs/op", "18 allocs/op")
	within = strings.ReplaceAll(within, "15 allocs/op", "18 allocs/op")
	if problems := gate(parseBench(within), testBaseline()); len(problems) != 0 {
		t.Fatalf("gate rejected a within-threshold drift: %v", problems)
	}
	beyond := strings.ReplaceAll(sampleOutput, "14 allocs/op", "19 allocs/op")
	beyond = strings.ReplaceAll(beyond, "15 allocs/op", "19 allocs/op")
	if problems := gate(parseBench(beyond), testBaseline()); len(problems) != 1 {
		t.Fatalf("gate missed a beyond-threshold regression: %v", problems)
	}
}

// TestGateTimeRegression: the ns/op gate is deliberately coarse (+200%
// by default) — 3x the baseline wall time fails, a 2x machine-to-machine
// wobble does not.
func TestGateTimeRegression(t *testing.T) {
	wobble := strings.ReplaceAll(sampleOutput, "253000 ns/op", "500000 ns/op")
	wobble = strings.ReplaceAll(wobble, "251000 ns/op", "500000 ns/op")
	if problems := gate(parseBench(wobble), testBaseline()); len(problems) != 0 {
		t.Fatalf("ns gate rejected within-threshold wobble: %v", problems)
	}
	blown := strings.ReplaceAll(sampleOutput, "253000 ns/op", "900000 ns/op")
	blown = strings.ReplaceAll(blown, "251000 ns/op", "900000 ns/op")
	problems := gate(parseBench(blown), testBaseline())
	if len(problems) != 1 || !strings.Contains(problems[0], "ns/op regressed") {
		t.Fatalf("ns gate problems = %v, want exactly the pooled time regression", problems)
	}
}

// budgetBaseline pins the pooled benchmark to an exact allocation
// contract on top of the usual drift gates.
func budgetBaseline() baseline {
	b := testBaseline()
	b.AllocsBudget = map[string]float64{
		"BenchmarkRuntimeRepeatedRun/pooled": 0,
	}
	return b
}

// TestBudgetGateIsExact pins the allocs_budget contract: the budget is
// exact in both directions (a regression AND an unexpected improvement
// fail), the failure message names the benchmark and the pinned budget,
// and a budgeted benchmark that vanishes from the run fails too.
func TestBudgetGateIsExact(t *testing.T) {
	if problems := gate(parseBench(sampleOutput), budgetBaseline()); len(problems) != 0 {
		t.Fatalf("budget gate failed on a conformant run: %v", problems)
	}

	// One allocation over budget fails with no threshold — even though
	// the same run passes the ±30% drift gate's arithmetic for small
	// baselines, the budget has no slack at all.
	over := strings.ReplaceAll(sampleOutput,
		"253000 ns/op	       0 B/op	       0 allocs/op",
		"253000 ns/op	      32 B/op	       1 allocs/op")
	over = strings.ReplaceAll(over,
		"251000 ns/op	       0 B/op	       0 allocs/op",
		"251000 ns/op	      32 B/op	       1 allocs/op")
	problems := gate(parseBench(over), budgetBaseline())
	if len(problems) != 2 {
		// The drift gate for pooled also trips (0 -> 1 exceeds limit 0);
		// the budget failure must be there alongside it.
		t.Fatalf("gate problems = %v, want drift + budget failures", problems)
	}
	var budgetMsg string
	for _, p := range problems {
		if strings.Contains(p, "budget") {
			budgetMsg = p
		}
	}
	if budgetMsg == "" {
		t.Fatalf("no budget failure among: %v", problems)
	}
	if !strings.Contains(budgetMsg, "BenchmarkRuntimeRepeatedRun/pooled") ||
		!strings.Contains(budgetMsg, "pins exactly 0") ||
		!strings.Contains(budgetMsg, "allocs/op = 1") {
		t.Fatalf("budget message must name the benchmark, observed value and pinned budget: %s", budgetMsg)
	}

	// An improvement below the pin fails too: the contract must be
	// re-tightened deliberately, not drift loose.
	b := budgetBaseline()
	b.AllocsBudget["BenchmarkRuntimeRepeatedRun/pooled"] = 3
	b.AllocsPerOp["BenchmarkRuntimeRepeatedRun/pooled"] = 3
	problems = gate(parseBench(sampleOutput), b)
	if len(problems) != 1 || !strings.Contains(problems[0], "pins exactly 3") {
		t.Fatalf("gate problems = %v, want exactly the stale-budget failure", problems)
	}

	// A vanished budgeted benchmark is a failure naming the budget.
	gone := strings.ReplaceAll(sampleOutput, "BenchmarkRuntimeRepeatedRun/pooled", "BenchmarkRenamed/pooled")
	problems = gate(parseBench(gone), budgetBaseline())
	var sawBudgetGone bool
	for _, p := range problems {
		if strings.Contains(p, "budget-gated benchmark did not run") &&
			strings.Contains(p, "BenchmarkRuntimeRepeatedRun/pooled") {
			sawBudgetGone = true
		}
	}
	if !sawBudgetGone {
		t.Fatalf("gate problems = %v, want a budget did-not-run failure", problems)
	}
}

// TestGateFailsWhenGatedBenchmarkVanishes: deleting the benchmark must
// not silently disable the gate.
func TestGateFailsWhenGatedBenchmarkVanishes(t *testing.T) {
	withoutPooled := strings.ReplaceAll(sampleOutput, "BenchmarkRuntimeRepeatedRun/pooled", "BenchmarkRenamed/pooled")
	problems := gate(parseBench(withoutPooled), testBaseline())
	// The pooled benchmark is gated on both allocs/op and ns/op, so its
	// disappearance trips both gates.
	if len(problems) != 2 || !strings.Contains(problems[0], "did not run") || !strings.Contains(problems[1], "did not run") {
		t.Fatalf("gate problems = %v, want two did-not-run failures", problems)
	}
}

func TestRunRejectsUnknownSubcommand(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("accepted empty args")
	}
	if err := run([]string{"deploy"}); err == nil {
		t.Error("accepted unknown subcommand")
	}
}
