// Krylov runs the full PCGPAK-style pipeline of the paper's Appendix I–II
// on a reservoir-style block seven-point problem: incomplete factorization,
// run-time parallelized triangular solves inside the ILU preconditioner,
// and restarted GMRES — comparing self-executing against pre-scheduled
// preconditioner application end to end.
package main

import (
	"fmt"
	"os"
	"runtime"

	"doconsider/internal/executor"
	"doconsider/internal/krylov"
	"doconsider/internal/stencil"
	"doconsider/internal/trisolve"
	"doconsider/internal/vec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "krylov:", err)
		os.Exit(1)
	}
}

func run() error {
	// SPE5-shaped problem: block 7-point operator, 3x3 blocks, 16x23x3 grid.
	a := stencil.SPE5()
	// Manufactured solution: x* = 1, b = A*1.
	ones := make([]float64, a.N)
	vec.Fill(ones, 1)
	b := make([]float64, a.N)
	if err := a.MatVec(b, ones); err != nil {
		return err
	}
	procs := runtime.GOMAXPROCS(0)
	fmt.Printf("SPE5-shaped system: n=%d nnz=%d, %d processors\n", a.N, a.NNZ(), procs)

	for _, cfg := range []struct {
		name string
		kind executor.Kind
	}{
		{"self-executing", executor.SelfExecuting},
		{"pre-scheduled", executor.PreScheduled},
	} {
		x := make([]float64, a.N)
		out, err := krylov.Solve(a, x, b, krylov.SolverConfig{
			Method:         krylov.MethodGMRES,
			Level:          0,
			Procs:          procs,
			Kind:           cfg.kind,
			Scheduler:      trisolve.GlobalSched,
			FactorParallel: true,
			Opts:           krylov.Options{Tol: 1e-10, MaxIter: 500, Restart: 30},
		})
		if err != nil {
			return fmt.Errorf("%s: %w", cfg.name, err)
		}
		errNorm := vec.MaxAbsDiff(x, ones)
		fmt.Printf("%-15s converged=%v iters=%d residual=%.2e phases=%d\n",
			cfg.name, out.Result.Converged, out.Result.Iterations, out.Result.Residual, out.Phases)
		fmt.Printf("%-15s setup=%v iterate=%v total=%v max|x-1|=%.2e\n",
			"", out.Timings.Symbolic.Round(1000), out.Timings.Iterate.Round(1000),
			out.Timings.Total.Round(1000), errNorm)
	}
	return nil
}
