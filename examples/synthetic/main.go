// Synthetic explores the paper's parameterized workload generator
// (Section 4.1): 2-D meshes with Poisson out-degree and geometric link
// distance. It sweeps the two parameters, reports the dependence structure
// each produces (wavefront counts, widths), and shows how the executor
// tradeoff moves with workload shape using the cost-model simulator.
package main

import (
	"fmt"
	"os"

	"doconsider/internal/machine"
	"doconsider/internal/schedule"
	"doconsider/internal/synthetic"
	"doconsider/internal/wavefront"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "synthetic:", err)
		os.Exit(1)
	}
}

func run() error {
	const procs = 16
	costs := machine.MultimaxCosts()
	fmt.Printf("%-12s %8s %8s %10s %10s %10s %10s\n",
		"Workload", "Links", "Phases", "MaxWidth", "SelfTime", "PreTime", "Pre/Self")
	for _, cfg := range []synthetic.Config{
		{Mesh: 65, Degree: 4, Distance: 1.5, Seed: 1989},
		{Mesh: 65, Degree: 4, Distance: 3, Seed: 1989},
		{Mesh: 65, Degree: 2, Distance: 3, Seed: 1989},
		{Mesh: 65, Degree: 8, Distance: 3, Seed: 1989},
		{Mesh: 65, Degree: 4, Distance: 8, Seed: 1989},
	} {
		a := synthetic.Generate(cfg)
		stats := synthetic.Summarize(a)
		deps := wavefront.FromLower(a)
		wf, err := wavefront.Compute(deps)
		if err != nil {
			return err
		}
		hist := wavefront.Histogram(wf)
		maxw := 0
		for _, h := range hist {
			if h > maxw {
				maxw = h
			}
		}
		work := make([]float64, a.N)
		for i := range work {
			work[i] = float64(a.RowNNZ(i))
		}
		s := schedule.Local(wf, procs, schedule.Striped)
		self, err := machine.SimulateSelfExecuting(s, deps, work, costs)
		if err != nil {
			return err
		}
		pre := machine.SimulatePreScheduled(s, work, costs)
		fmt.Printf("%-12s %8d %8d %10d %10.0f %10.0f %10.2f\n",
			cfg.Name(), stats.Links, len(hist), maxw,
			self.Makespan, pre.Makespan, pre.Makespan/self.Makespan)
	}
	fmt.Println("\nDenser and longer-range workloads deepen the dependence DAG")
	fmt.Println("(more phases), widening the self-executing advantage.")
	return nil
}
