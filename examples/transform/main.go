// Transform demonstrates the paper's Section 2.2 automation: a sequential
// Fortran-style loop annotated with doconsider is parsed, analyzed for the
// array it writes and the indirect reads that carry dependences, executed
// through the inspector/executor runtime, and finally emitted as the Go
// source a compiler pass would generate (the structures of Figures 4 and 7).
package main

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"

	"doconsider/internal/core"
	"doconsider/internal/executor"
	"doconsider/internal/transform"
	"doconsider/internal/vec"
)

const src = `
doconsider i = 0, n-1
  x(i) = x(i) + b(i)*x(ia(i))
enddo
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "transform:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Print("Input loop:", src, "\n")
	loop, err := transform.Parse(src)
	if err != nil {
		return err
	}
	an, err := transform.Analyze(loop)
	if err != nil {
		return err
	}
	fmt.Printf("Analysis: writes %q; %d direct read(s), %d indirect read(s); index arrays %v\n\n",
		an.Written, an.SelfReads, an.IndirectReads, an.IntArrays)

	// Bind run-time data and execute through the runtime.
	const n = 50000
	rng := rand.New(rand.NewSource(3))
	env := transform.NewEnv()
	x := make([]float64, n)
	b := make([]float64, n)
	ia := make([]int32, n)
	for i := 0; i < n; i++ {
		x[i] = rng.NormFloat64()
		b[i] = 0.3 * rng.NormFloat64()
		ia[i] = int32(rng.Intn(n))
	}
	env.Float["x"] = x
	env.Float["b"] = b
	env.Int["ia"] = ia
	env.Scalars["n"] = n

	// Reference sequential run on a copy.
	envSeq := transform.NewEnv()
	envSeq.Float["x"] = append([]float64(nil), x...)
	envSeq.Float["b"] = b
	envSeq.Int["ia"] = ia
	envSeq.Scalars["n"] = n
	if err := an.RunSequential(envSeq); err != nil {
		return err
	}

	deps, err := an.Inspect(env)
	if err != nil {
		return err
	}
	rt, err := core.New(deps,
		core.WithProcs(runtime.GOMAXPROCS(0)),
		core.WithExecutor(executor.SelfExecuting))
	if err != nil {
		return err
	}
	body, err := an.ExecutorBody(env, 0)
	if err != nil {
		return err
	}
	m := rt.Run(body)
	fmt.Printf("Executed %d iterations over %d wavefronts (%d dependence checks)\n",
		m.Executed, rt.NumWavefronts(), m.SpinChecks)
	if d := vec.MaxAbsDiff(env.Float["x"], envSeq.Float["x"]); d != 0 {
		return fmt.Errorf("transformed execution differs by %g", d)
	}
	fmt.Print("Transformed execution matches sequential semantics exactly.\n\n")

	fmt.Println("Generated Go source (what the compiler pass would emit):")
	fmt.Println(transform.GenerateGo(an, "RunSimpleLoop"))
	return nil
}
