// Quickstart: run-time parallelization of the paper's motivating loop,
//
//	do i = 1, n
//	    x(i) = x(i) + b(i)*x(ia(i))
//	end do
//
// whose cross-iteration dependences are known only once the indirection
// array ia has its run-time values. The doconsider runtime inspects ia,
// sorts iterations into wavefronts, and executes the loop with busy-wait
// (self-executing) synchronization — then we verify against the
// sequential semantics.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"

	"doconsider/internal/core"
	"doconsider/internal/executor"
	"doconsider/internal/vec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 100000
	rng := rand.New(rand.NewSource(42))

	// Run-time data: the indirection array and coefficients.
	ia := make([]int32, n)
	b := make([]float64, n)
	x0 := make([]float64, n)
	for i := range ia {
		ia[i] = int32(rng.Intn(n))
		b[i] = 0.25 * rng.NormFloat64()
		x0[i] = rng.NormFloat64()
	}

	procs := runtime.GOMAXPROCS(0)
	// The inspector: dependence extraction + wavefront sort + schedule.
	loop, err := core.NewSimpleLoop(ia,
		core.WithProcs(procs),
		core.WithExecutor(executor.SelfExecuting),
		core.WithScheduler(core.GlobalScheduler),
	)
	if err != nil {
		return err
	}
	fmt.Printf("n=%d, %d processors, %d wavefronts found by the inspector\n",
		n, procs, loop.Runtime().NumWavefronts())

	// The executor: repeated sweeps reuse the schedule (the inspector cost
	// is amortized, exactly the paper's use case).
	xPar := append([]float64(nil), x0...)
	xSeq := append([]float64(nil), x0...)
	for sweep := 0; sweep < 3; sweep++ {
		m := loop.Run(xPar, b)
		loop.RunSequential(xSeq, b)
		fmt.Printf("sweep %d: executed %d iterations, %d dependence checks, %d busy waits\n",
			sweep, m.Executed, m.SpinChecks, m.SpinWaits)
	}

	if d := vec.MaxAbsDiff(xPar, xSeq); d != 0 {
		return fmt.Errorf("parallel result differs from sequential by %g", d)
	}
	fmt.Println("parallel result matches sequential execution exactly")

	// The pooled executor takes the amortization one step further: the
	// workers themselves persist across sweeps (zero goroutine spawns and
	// zero allocations per Run after warm-up).
	pooled, err := core.NewSimpleLoop(ia,
		core.WithProcs(procs),
		core.WithExecutor(executor.Pooled),
		core.WithScheduler(core.GlobalScheduler),
	)
	if err != nil {
		return err
	}
	defer pooled.Runtime().Close()
	xPool := append([]float64(nil), x0...)
	xSeq = append(xSeq[:0], x0...)
	for sweep := 0; sweep < 3; sweep++ {
		pooled.Run(xPool, b)
		pooled.RunSequential(xSeq, b)
	}
	if d := vec.MaxAbsDiff(xPool, xSeq); d != 0 {
		return fmt.Errorf("pooled result differs from sequential by %g", d)
	}
	fmt.Println("pooled executor (persistent workers) matches as well")
	return nil
}
