// Trisolve compares every combination of executor (pre-scheduled,
// self-executing, doacross) and index-set scheduling (global, local) on a
// sparse lower triangular solve from the zero-fill factorization of a
// five-point mesh — the paper's central workload (Figure 8) — reporting
// wall-clock times on the host and verifying all solutions agree.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"doconsider/internal/executor"
	"doconsider/internal/ilu"
	"doconsider/internal/stencil"
	"doconsider/internal/trisolve"
	"doconsider/internal/vec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "trisolve:", err)
		os.Exit(1)
	}
}

func run() error {
	const mesh = 200 // 200x200 grid: the paper's L5-PT scale
	a := stencil.FivePoint(mesh)
	pat, err := ilu.Symbolic(a, 0)
	if err != nil {
		return err
	}
	fact, err := ilu.NumericSeq(a, pat)
	if err != nil {
		return err
	}
	l := fact.L()
	n := l.N

	rng := rand.New(rand.NewSource(7))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want := make([]float64, n)
	t0 := time.Now()
	if err := trisolve.ForwardSeq(l, want, b); err != nil {
		return err
	}
	seqTime := time.Since(t0)
	fmt.Printf("lower factor: n=%d nnz=%d, sequential solve %v\n", n, l.NNZ(), seqTime)

	procs := runtime.GOMAXPROCS(0)
	type config struct {
		name  string
		kind  executor.Kind
		sched trisolve.SchedulerKind
	}
	configs := []config{
		{"self-executing / global", executor.SelfExecuting, trisolve.GlobalSched},
		{"self-executing / local", executor.SelfExecuting, trisolve.LocalSched},
		{"pre-scheduled  / global", executor.PreScheduled, trisolve.GlobalSched},
		{"pre-scheduled  / local", executor.PreScheduled, trisolve.LocalSched},
		{"doacross       / natural", executor.SelfExecuting, trisolve.NaturalSched},
	}
	const sweeps = 5
	for _, cfg := range configs {
		t0 := time.Now()
		plan, err := trisolve.NewPlan(l, true,
			trisolve.WithProcs(procs),
			trisolve.WithKind(cfg.kind),
			trisolve.WithScheduler(cfg.sched))
		if err != nil {
			return err
		}
		inspect := time.Since(t0)
		x := make([]float64, n)
		t0 = time.Now()
		for s := 0; s < sweeps; s++ {
			plan.Solve(x, b)
		}
		per := time.Since(t0) / sweeps
		if d := vec.MaxAbsDiff(x, want); d > 1e-12 {
			return fmt.Errorf("%s: wrong answer (diff %g)", cfg.name, d)
		}
		fmt.Printf("%-26s %4d phases  inspector %-10v  solve %-10v  speedup %.2fx\n",
			cfg.name, plan.Phases(), inspect.Round(time.Microsecond),
			per.Round(time.Microsecond), float64(seqTime)/float64(per))
	}
	fmt.Println("all configurations match the sequential solution")
	return nil
}
