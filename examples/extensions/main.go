// Extensions demonstrates the repository's features beyond the paper's
// core executors: barrier-phase merging (reference [13]), dynamic
// self-scheduling over the wavefront-sorted list (related work of
// Polychronopoulos/Kuck and Tang/Yew), the on-the-fly executor for loops
// that are not start-time schedulable (the dodynamic companion work), and
// reorderings (reverse Cuthill-McKee vs natural order) that reshape the
// wavefront population.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"

	"doconsider/internal/core"
	"doconsider/internal/executor"
	"doconsider/internal/reorder"
	"doconsider/internal/schedule"
	"doconsider/internal/sparse"
	"doconsider/internal/stencil"
	"doconsider/internal/vec"
	"doconsider/internal/wavefront"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "extensions:", err)
		os.Exit(1)
	}
}

func run() error {
	procs := runtime.GOMAXPROCS(0)
	rng := rand.New(rand.NewSource(11))

	// --- 1. Barrier-phase merging (ref [13]) -----------------------------
	// Simulated processors are goroutines; use 8 regardless of host CPUs.
	const simProcs = 8
	n := 4096
	ia := make([]int32, n)
	for i := range ia {
		// Chains of 16 iterations; chain heads have no dependence.
		if i%16 != 0 {
			ia[i] = int32(i - 1)
		} else {
			ia[i] = int32(i)
		}
	}
	plain, err := core.NewSimpleLoop(ia, core.WithProcs(simProcs),
		core.WithExecutor(executor.PreScheduled), core.WithScheduler(core.LocalScheduler),
		core.WithPartition(schedule.Blocked))
	if err != nil {
		return err
	}
	merged, err := core.NewSimpleLoop(ia, core.WithProcs(simProcs),
		core.WithExecutor(executor.PreScheduled), core.WithScheduler(core.LocalScheduler),
		core.WithPartition(schedule.Blocked), core.WithMergedPhases())
	if err != nil {
		return err
	}
	mergedStriped, err := core.NewSimpleLoop(ia, core.WithProcs(simProcs),
		core.WithExecutor(executor.PreScheduled), core.WithScheduler(core.LocalScheduler),
		core.WithPartition(schedule.Striped), core.WithMergedPhases())
	if err != nil {
		return err
	}
	fmt.Printf("phase merging (blocked partition): %d barrier phases -> %d\n",
		plain.Runtime().Schedule().NumPhases, merged.Runtime().Schedule().NumPhases)
	fmt.Printf("phase merging (striped partition): stays at %d (chains cross processors)\n",
		mergedStriped.Runtime().Schedule().NumPhases)
	b := make([]float64, n)
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	for i := range b {
		b[i] = 0.2 * rng.NormFloat64()
		x1[i] = rng.NormFloat64()
	}
	copy(x2, x1)
	plain.Run(x1, b)
	merged.Run(x2, b)
	if vec.MaxAbsDiff(x1, x2) != 0 {
		return fmt.Errorf("merged execution diverged")
	}
	fmt.Println("merged execution matches the unmerged pre-scheduled run")

	// --- 2. Dynamic self-scheduling over the sorted list -----------------
	deps := wavefront.FromIndirection(ia)
	wf, err := wavefront.Compute(deps)
	if err != nil {
		return err
	}
	order := executor.SortedOrder(wf)
	m := executor.RunSelfScheduled(order, deps, procs, 32, func(i int32) {
		// trivial body; the dynamic chunk claiming is the point
	})
	fmt.Printf("self-scheduled executor: %d iterations in dynamic chunks of 32 (%d waits)\n",
		m.Executed, m.SpinWaits)

	// --- 3. On-the-fly execution (not start-time schedulable) ------------
	depsOf := func(i int32) []int32 { return deps.On(int(i)) }
	m = executor.RunOnTheFly(n, procs, depsOf, func(i int32) {})
	fmt.Printf("on-the-fly executor: %d iterations with run-time-discovered deps\n", m.Executed)

	// --- 4. Reordering interacts with wavefront structure ----------------
	// Shuffle a mesh operator (simulating an unstructured input numbering),
	// then recover locality with RCM; the wavefront population — what the
	// schedulers consume — changes with the ordering.
	a := stencil.Laplace2D(40, 40)
	shufPerm := make([]int32, a.N)
	for i, v := range rng.Perm(a.N) {
		shufPerm[i] = int32(v)
	}
	shuffle, err := reorder.NewPermutation(shufPerm)
	if err != nil {
		return err
	}
	shuffled, err := shuffle.Apply(a)
	if err != nil {
		return err
	}
	rcm, err := reorder.RCM(shuffled)
	if err != nil {
		return err
	}
	restored, err := rcm.Apply(shuffled)
	if err != nil {
		return err
	}
	for _, c := range []struct {
		name string
		m    *sparse.CSR
	}{{"natural", a}, {"shuffled", shuffled}, {"RCM", restored}} {
		phases, width, err := reorder.WavefrontProfile(c.m)
		if err != nil {
			return err
		}
		fmt.Printf("ordering %-9s bandwidth %4d, %3d wavefronts (max width %d)\n",
			c.name, reorder.Bandwidth(c.m), phases, width)
	}
	return nil
}
