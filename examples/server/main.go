// Server is a runnable client walkthrough of the serving subsystem: it
// starts the trisolve server in-process on a loopback port (exactly what
// `loops server` serves on a real address), then acts as a client —
// submitting a factor with a full request, resubmitting it by content
// fingerprint with packed right-hand sides, resubmitting once more over
// the zero-copy binary frame protocol, firing concurrent requests to
// show cross-request coalescing, and finally scraping /v1/stats and
// /metrics. Point baseURL at a remote `loops server` to run the same
// client over the network.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"

	"doconsider/internal/ilu"
	"doconsider/internal/server"
	"doconsider/internal/stencil"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "server example:", err)
		os.Exit(1)
	}
}

func run() error {
	srv, err := server.New(server.Config{
		Procs:          2,
		CoalesceWindow: 5 * time.Millisecond,
		CoalesceWidth:  32,
	})
	if err != nil {
		return err
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return err
	}
	baseURL := "http://" + srv.Addr()
	fmt.Printf("server listening on %s\n\n", srv.Addr())

	// The factor: L from the zero-fill factorization of a 63x63 mesh —
	// the paper's 5-PT workload.
	a := stencil.FivePoint(63)
	pat, err := ilu.Symbolic(a, 0)
	if err != nil {
		return err
	}
	fact, err := ilu.NumericSeq(a, pat)
	if err != nil {
		return err
	}
	l := fact.L()
	rng := rand.New(rand.NewSource(1))
	b := make([]float64, l.N)
	for i := range b {
		b[i] = rng.Float64()
	}

	// 1. Full submission: ship the CSR structure + values + one RHS.
	lower := true
	full := server.SolveRequest{
		N: l.N, RowPtr: l.RowPtr, ColIdx: l.ColIdx, Val: l.Val,
		Lower: &lower, B: [][]float64{b},
	}
	sr, err := post(baseURL, &full)
	if err != nil {
		return err
	}
	fmt.Printf("full submission:   n=%d nnz=%d -> x[0]=%.6f, factor fingerprint %s\n",
		l.N, l.NNZ(), sr.X[0][0], sr.Fp)

	// 2. Recurring traffic: resubmit by fingerprint with packed RHS —
	// no matrix on the wire, no JSON float parsing.
	byFp := server.SolveRequest{Fp: sr.Fp, Lower: &lower, B64: [][]byte{server.PackFloats(b)}}
	sr2, err := post(baseURL, &byFp)
	if err != nil {
		return err
	}
	xs, err := sr2.Solutions()
	if err != nil {
		return err
	}
	fmt.Printf("by fingerprint:    x[0]=%.6f (bit-identical: %v)\n", xs[0][0], xs[0][0] == sr.X[0][0])

	// 3. The binary wire protocol: the same by-fingerprint request as a
	// zero-copy frame. server.EncodeRequestFrame is the client-side
	// encoder; the server decodes the frame by slicing it in place into
	// pooled arena memory (no JSON, no base64, 0 allocs/op when warm)
	// and replies with a frame that DecodeResponseFrame unpacks.
	frame, err := server.EncodeRequestFrame(&server.SolveRequest{
		Fp: sr.Fp, Lower: &lower, B: [][]float64{b},
	})
	if err != nil {
		return err
	}
	wr, err := postFrame(baseURL, frame)
	if err != nil {
		return err
	}
	fmt.Printf("binary frame:      x[0]=%.6f (bit-identical: %v, %d bytes on the wire)\n",
		wr.X[0][0], wr.X[0][0] == sr.X[0][0], len(frame))

	// 4. Concurrent clients on one structure: requests arriving within
	// the coalescing window share a single executor pass.
	const clients = 8
	var wg sync.WaitGroup
	fused := make([]int, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(2 + c)))
			rhs := make([]float64, l.N)
			for i := range rhs {
				rhs[i] = rng.Float64()
			}
			req := server.SolveRequest{Fp: sr.Fp, Lower: &lower, B64: [][]byte{server.PackFloats(rhs)}}
			resp, err := post(baseURL, &req)
			if err == nil {
				fused[c] = resp.Fused
			}
		}(c)
	}
	wg.Wait()
	fmt.Printf("concurrent burst:  per-request pass sharing (fused counts): %v\n", fused)

	// 5. Observability: the JSON stats snapshot and a few metric lines.
	stats := srv.Stats()
	fmt.Printf("\nstats: plan cache hit rate %.1f%%, coalescing rate %.1f%% (%d passes for %d requests)\n",
		100*stats.CacheHitRate, 100*stats.Coalesce.Rate, stats.Coalesce.Passes, stats.Coalesce.Requests)
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return err
	}
	fmt.Println("\nselected /metrics lines:")
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if bytes.HasPrefix(line, []byte("loops_plan_cache_hit_rate")) ||
			bytes.HasPrefix(line, []byte("loops_coalesce_passes_total")) ||
			bytes.HasPrefix(line, []byte("loops_admission_accepted_total")) {
			fmt.Printf("  %s\n", line)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}

func post(baseURL string, req *server.SolveRequest) (*server.SolveResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(baseURL+"/v1/trisolve", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, e.Error)
	}
	var sr server.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, err
	}
	return &sr, nil
}

// postFrame posts an encoded request frame and decodes the frame reply
// — the whole binary client fits in a dozen lines.
func postFrame(baseURL string, frame []byte) (*server.WireResponse, error) {
	resp, err := http.Post(baseURL+"/v1/trisolve", server.FrameContentType, bytes.NewReader(frame))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, err
	}
	wr, err := server.DecodeResponseFrame(buf.Bytes())
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, wr.ErrMsg)
	}
	return wr, nil
}
