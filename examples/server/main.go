// Server is a runnable client walkthrough of the serving subsystem: it
// starts the trisolve server in-process on a loopback port (exactly what
// `loops server` serves on a real address), then acts as a client
// through the exported client package — submitting a factor with a full
// request, resubmitting it by content fingerprint, resubmitting once
// more over the zero-copy binary frame protocol, firing concurrent
// requests to show cross-request coalescing, and finally scraping
// /v1/stats and /metrics. Point baseURL at a remote `loops server` (or
// a `loops router` front door — same surface) to run the same client
// over the network.
package main

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"

	"doconsider/client"
	"doconsider/internal/ilu"
	"doconsider/internal/server"
	"doconsider/internal/stencil"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "server example:", err)
		os.Exit(1)
	}
}

func run() error {
	srv, err := server.New(server.Config{
		Procs:    2,
		Coalesce: server.CoalesceConfig{Window: 5 * time.Millisecond, Width: 32},
	})
	if err != nil {
		return err
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return err
	}
	baseURL := "http://" + srv.Addr()
	fmt.Printf("server listening on %s\n\n", srv.Addr())
	ctx := context.Background()

	// The typed client owns all request encoding: one for the JSON wire,
	// one for the DCWF binary frame wire. Both speak to the same server.
	cli := client.New(baseURL)
	bcli := client.New(baseURL, client.WithWire(client.WireBinary))

	// The factor: L from the zero-fill factorization of a 63x63 mesh —
	// the paper's 5-PT workload.
	a := stencil.FivePoint(63)
	pat, err := ilu.Symbolic(a, 0)
	if err != nil {
		return err
	}
	fact, err := ilu.NumericSeq(a, pat)
	if err != nil {
		return err
	}
	l := fact.L()
	rng := rand.New(rand.NewSource(1))
	b := make([]float64, l.N)
	for i := range b {
		b[i] = rng.Float64()
	}

	// 1. Full submission: ship the CSR structure + values + one RHS.
	// Factor wraps the recurring-traffic idiom — first Solve registers
	// the matrix and remembers the server's content fingerprint.
	f := client.NewFactor(l, true)
	sr, err := f.Solve(ctx, cli, [][]float64{b})
	if err != nil {
		return err
	}
	x1, err := sr.Solutions()
	if err != nil {
		return err
	}
	fmt.Printf("full submission:   n=%d nnz=%d -> x[0]=%.6f, factor fingerprint %s\n",
		l.N, l.NNZ(), x1[0][0], sr.Fp)

	// 2. Recurring traffic: resubmit by fingerprint — no matrix on the
	// wire, and the client packs the RHS as base64 floats (no JSON float
	// parsing server-side). Factor falls back to a full ship by itself
	// if the server has evicted the factor.
	sr2, err := f.Solve(ctx, cli, [][]float64{b})
	if err != nil {
		return err
	}
	xs, err := sr2.Solutions()
	if err != nil {
		return err
	}
	fmt.Printf("by fingerprint:    x[0]=%.6f (bit-identical: %v)\n", xs[0][0], xs[0][0] == x1[0][0])

	// 3. The binary wire protocol: the same by-fingerprint request over
	// a zero-copy DCWF frame — same client API, different Wire option.
	// The server decodes the frame by slicing it in place into pooled
	// arena memory (no JSON, no base64, 0 allocs/op when warm).
	sr3, err := f.Solve(ctx, bcli, [][]float64{b})
	if err != nil {
		return err
	}
	x3, err := sr3.Solutions()
	if err != nil {
		return err
	}
	fmt.Printf("binary frame:      x[0]=%.6f (bit-identical: %v)\n",
		x3[0][0], x3[0][0] == x1[0][0])

	// 4. Concurrent clients on one structure: requests arriving within
	// the coalescing window share a single executor pass.
	const clients = 8
	var wg sync.WaitGroup
	fused := make([]int, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(2 + c)))
			rhs := make([]float64, l.N)
			for i := range rhs {
				rhs[i] = rng.Float64()
			}
			resp, err := f.Solve(ctx, cli, [][]float64{rhs})
			if err == nil {
				fused[c] = resp.Fused
			}
		}(c)
	}
	wg.Wait()
	fmt.Printf("concurrent burst:  per-request pass sharing (fused counts): %v\n", fused)

	// 5. Observability: the JSON stats snapshot and a few metric lines.
	stats, err := cli.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("\nstats: plan cache hit rate %.1f%%, coalescing rate %.1f%% (%d passes for %d requests)\n",
		100*stats.CacheHitRate, 100*stats.Coalesce.Rate, stats.Coalesce.Passes, stats.Coalesce.Requests)
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return err
	}
	fmt.Println("\nselected /metrics lines:")
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if bytes.HasPrefix(line, []byte("loops_plan_cache_hit_rate")) ||
			bytes.HasPrefix(line, []byte("loops_coalesce_passes_total")) ||
			bytes.HasPrefix(line, []byte("loops_admission_accepted_total")) {
			fmt.Printf("  %s\n", line)
		}
	}

	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Shutdown(sctx)
}
