package doconsider

import (
	"math"
	"math/rand"
	"testing"

	"doconsider/internal/core"
	"doconsider/internal/executor"
	"doconsider/internal/ilu"
	"doconsider/internal/krylov"
	"doconsider/internal/machine"
	"doconsider/internal/problems"
	"doconsider/internal/reorder"
	"doconsider/internal/schedule"
	"doconsider/internal/synthetic"
	"doconsider/internal/transform"
	"doconsider/internal/trisolve"
	"doconsider/internal/vec"
	"doconsider/internal/wavefront"
)

// TestEndToEndPipeline exercises the whole system the way a user would:
// generate a workload, inspect, schedule, execute with every executor, and
// verify all answers agree with sequential execution.
func TestEndToEndPipeline(t *testing.T) {
	a := synthetic.Generate(synthetic.Config{Mesh: 25, Degree: 4, Distance: 2, Seed: 42})
	deps := wavefront.FromLower(a)
	wf, err := wavefront.Compute(deps)
	if err != nil {
		t.Fatal(err)
	}
	rhs := make([]float64, a.N)
	rng := rand.New(rand.NewSource(1))
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	want := make([]float64, a.N)
	if err := trisolve.ForwardSeq(a, want, rhs); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []executor.Kind{executor.PreScheduled, executor.SelfExecuting, executor.DoAcross} {
		for _, schedKind := range []trisolve.SchedulerKind{trisolve.GlobalSched, trisolve.LocalSched} {
			plan, err := trisolve.NewPlan(a, true,
				trisolve.WithProcs(7), trisolve.WithKind(kind), trisolve.WithScheduler(schedKind))
			if err != nil {
				t.Fatal(err)
			}
			x := make([]float64, a.N)
			plan.Solve(x, rhs)
			if d := vec.MaxAbsDiff(x, want); d > 1e-12 {
				t.Errorf("kind=%v sched=%v: diff %v", kind, schedKind, d)
			}
		}
	}
	// Cost-model and goroutine executors must agree on the phase structure.
	s := schedule.Global(wf, 7)
	if _, err := machine.SimulateSelfExecuting(s, deps, problems.RowWork(a), machine.MultimaxCosts()); err != nil {
		t.Fatal(err)
	}
}

// TestEndToEndKrylovWithReordering solves a PDE system before and after a
// random shuffle + RCM reordering; both must converge to the same solution
// in the original numbering.
func TestEndToEndKrylovWithReordering(t *testing.T) {
	p := problems.MustGet("SPE4")
	a := p.A
	ones := make([]float64, a.N)
	vec.Fill(ones, 1)
	rhs := make([]float64, a.N)
	if err := a.MatVec(rhs, ones); err != nil {
		t.Fatal(err)
	}
	xOrig := make([]float64, a.N)
	out, err := krylov.Solve(a, xOrig, rhs, krylov.SolverConfig{
		Method: krylov.MethodGMRES, Procs: 4, Kind: executor.SelfExecuting,
		Opts: krylov.Options{Tol: 1e-10, MaxIter: 400, Restart: 30},
	})
	if err != nil || !out.Result.Converged {
		t.Fatalf("original solve failed: %v %+v", err, out.Result)
	}
	// Permuted system.
	rng := rand.New(rand.NewSource(3))
	perm := make([]int32, a.N)
	for i, v := range rng.Perm(a.N) {
		perm[i] = int32(v)
	}
	pm, err := reorder.NewPermutation(perm)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := pm.Apply(a)
	if err != nil {
		t.Fatal(err)
	}
	prhs := make([]float64, a.N)
	pm.PermuteVector(prhs, rhs)
	xPerm := make([]float64, a.N)
	out2, err := krylov.Solve(pa, xPerm, prhs, krylov.SolverConfig{
		Method: krylov.MethodGMRES, Procs: 4, Kind: executor.PreScheduled,
		Opts: krylov.Options{Tol: 1e-10, MaxIter: 400, Restart: 30},
	})
	if err != nil || !out2.Result.Converged {
		t.Fatalf("permuted solve failed: %v %+v", err, out2.Result)
	}
	back := make([]float64, a.N)
	pm.UnpermuteVector(back, xPerm)
	for i := range back {
		if math.Abs(back[i]-1) > 1e-6 || math.Abs(xOrig[i]-1) > 1e-6 {
			t.Fatalf("solutions wrong at %d: %v %v", i, back[i], xOrig[i])
		}
	}
}

// TestEndToEndTransformPipeline drives a DSL loop through parse → analyze
// → inspect → core runtime with merged phases, against the interpreter's
// sequential semantics.
func TestEndToEndTransformPipeline(t *testing.T) {
	src := `
doconsider i = 0, n-1
  x(i) = x(i) + b(i)*x(ia(i))
enddo
`
	loop, err := transform.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	an, err := transform.Analyze(loop)
	if err != nil {
		t.Fatal(err)
	}
	n := 500
	rng := rand.New(rand.NewSource(4))
	mkEnv := func() *transform.Env {
		rng := rand.New(rand.NewSource(5))
		env := transform.NewEnv()
		x := make([]float64, n)
		b := make([]float64, n)
		ia := make([]int32, n)
		for i := 0; i < n; i++ {
			x[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64() * 0.3
			ia[i] = int32(rng.Intn(n))
		}
		env.Float["x"] = x
		env.Float["b"] = b
		env.Int["ia"] = ia
		env.Scalars["n"] = n
		return env
	}
	_ = rng
	seqEnv := mkEnv()
	if err := an.RunSequential(seqEnv); err != nil {
		t.Fatal(err)
	}
	parEnv := mkEnv()
	deps, err := an.Inspect(parEnv)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.New(deps, core.WithProcs(6),
		core.WithExecutor(executor.PreScheduled), core.WithMergedPhases())
	if err != nil {
		t.Fatal(err)
	}
	body, err := an.ExecutorBody(parEnv, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt.Run(body)
	if d := vec.MaxAbsDiff(seqEnv.Float["x"], parEnv.Float["x"]); d != 0 {
		t.Errorf("pipeline differs by %v", d)
	}
}

// TestEndToEndILUConsistency checks that every factorization path
// (sequential/parallel symbolic × sequential/parallel numeric) produces
// identical factors on a reservoir-style problem.
func TestEndToEndILUConsistency(t *testing.T) {
	a := problems.MustGet("SPE4").A
	patSeq, err := ilu.Symbolic(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	patPar, err := ilu.SymbolicParallel(a, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	fSeq, err := ilu.NumericSeq(a, patSeq)
	if err != nil {
		t.Fatal(err)
	}
	fPar, _, err := ilu.NumericParallel(a, patPar, 8, executor.SelfExecuting, ilu.GlobalSchedule)
	if err != nil {
		t.Fatal(err)
	}
	if d := vec.MaxAbsDiff(fSeq.LU.Val, fPar.LU.Val); d != 0 {
		t.Errorf("factorization paths differ by %v", d)
	}
}
