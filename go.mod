module doconsider

go 1.23
