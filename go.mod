module doconsider

go 1.24
