package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	"doconsider/internal/server"
	"doconsider/internal/sparse"
	"doconsider/internal/stencil"
	"doconsider/internal/synthetic"
)

func testLower(m int) *sparse.CSR {
	return stencil.Laplace2D(m, m).LowerWithDiag()
}

func testRHS(n int) [][]float64 {
	b := make([][]float64, 2)
	for j := range b {
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(j*n+i%7) + 0.5
		}
		b[j] = v
	}
	return b
}

// startServer runs a real server for integration-shaped client tests.
func startServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

// TestClientWireEquivalence solves the same problem over both wires and
// requires bit-identical solutions and matching fingerprints — the two
// encodings are one API.
func TestClientWireEquivalence(t *testing.T) {
	s := startServer(t, server.Config{Procs: 2})
	ctx := context.Background()
	l, b := testLower(6), testRHS(36)
	lower := true
	req := &Request{N: l.N, RowPtr: l.RowPtr, ColIdx: l.ColIdx, Val: l.Val, Lower: &lower, B: b}

	jc := New("http://" + s.Addr())
	bc := New("http://"+s.Addr(), WithWire(WireBinary))
	jr, err := jc.Solve(ctx, req)
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	br, err := bc.Solve(ctx, req)
	if err != nil {
		t.Fatalf("binary: %v", err)
	}
	if jr.Fp == "" || jr.Fp != br.Fp {
		t.Errorf("fingerprints: json %q, binary %q; want equal and non-empty", jr.Fp, br.Fp)
	}
	jx, err := jr.Solutions()
	if err != nil {
		t.Fatal(err)
	}
	bx, err := br.Solutions()
	if err != nil {
		t.Fatal(err)
	}
	if len(jx) != len(bx) {
		t.Fatalf("solution counts differ: %d vs %d", len(jx), len(bx))
	}
	for j := range jx {
		for i := range jx[j] {
			if jx[j][i] != bx[j][i] {
				t.Fatalf("x[%d][%d]: json %v, binary %v", j, i, jx[j][i], bx[j][i])
			}
		}
	}
	if jr.TraceID == "" || br.TraceID == "" {
		t.Errorf("trace IDs: json %q, binary %q; want both minted", jr.TraceID, br.TraceID)
	}
}

// TestClientDoesNotMutateRequest pins the Do contract: packing B into
// b_b64 happens on a copy, so a caller can resubmit the same request.
func TestClientDoesNotMutateRequest(t *testing.T) {
	s := startServer(t, server.Config{Procs: 1})
	ctx := context.Background()
	l := testLower(4)
	lower := true
	req := &Request{N: l.N, RowPtr: l.RowPtr, ColIdx: l.ColIdx, Val: l.Val, Lower: &lower, B: testRHS(16)}
	c := New("http://" + s.Addr())
	for i := 0; i < 2; i++ {
		if _, err := c.Solve(ctx, req); err != nil {
			t.Fatalf("solve %d: %v", i, err)
		}
		if req.B == nil || req.B64 != nil {
			t.Fatalf("solve %d mutated the caller's request: B=%v B64=%v", i, req.B == nil, req.B64 != nil)
		}
	}
}

// TestClientAPIErrorContract checks the typed error surface: a non-2xx
// reply becomes an *APIError carrying status, message, trace ID and
// Retry-After; a transport failure stays a *url.Error; StatusOf tells
// them apart.
func TestClientAPIErrorContract(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(map[string]string{"error": "shed", "trace_id": "t-9"})
	}))
	defer ts.Close()

	c := New(ts.URL)
	lower := true
	_, err := c.Do(context.Background(), &Request{Fp: "00000000000000aa", Lower: &lower, B: [][]float64{{1}}})
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v (%T), want *APIError", err, err)
	}
	if ae.Status != 429 || ae.Msg != "shed" || ae.TraceID != "t-9" || ae.RetryAfter != 2*time.Second {
		t.Errorf("APIError = %+v, want {429 shed t-9 2s}", ae)
	}
	if !ae.Overloaded() {
		t.Error("429 must report Overloaded")
	}
	if StatusOf(err) != 429 {
		t.Errorf("StatusOf = %d, want 429", StatusOf(err))
	}

	ts.Close() // now a transport error
	_, err = c.Do(context.Background(), &Request{Fp: "00000000000000aa", Lower: &lower, B: [][]float64{{1}}})
	var ue *url.Error
	if !errors.As(err, &ue) {
		t.Fatalf("transport err = %v (%T), want *url.Error", err, err)
	}
	if StatusOf(err) != 0 {
		t.Errorf("StatusOf(transport) = %d, want 0", StatusOf(err))
	}
}

// TestClientSolveRetriesOverload checks the retry policy: overload
// replies are retried honoring Retry-After = 0-or-backoff semantics,
// and a definitive 4xx is returned immediately.
func TestClientSolveRetriesOverload(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"draining"}`)
			return
		}
		fmt.Fprint(w, `{"x":[[1]],"fp":"00000000000000bb"}`)
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetry(3, time.Millisecond))
	lower := true
	resp, err := c.Solve(context.Background(), &Request{Fp: "00000000000000aa", Lower: &lower, B: [][]float64{{1}}})
	if err != nil {
		t.Fatalf("solve after retries: %v", err)
	}
	if resp.Fp != "00000000000000bb" {
		t.Errorf("fp = %q", resp.Fp)
	}
	if n := hits.Load(); n != 3 {
		t.Errorf("server saw %d attempts, want 3 (two sheds + success)", n)
	}

	// A 404 is not overload: no retry burn, immediate return.
	hits.Store(100)
	notFound := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":"unknown fp"}`)
	}))
	defer notFound.Close()
	nc := New(notFound.URL, WithRetry(3, time.Millisecond))
	_, err = nc.Solve(context.Background(), &Request{Fp: "00000000000000aa", Lower: &lower, B: [][]float64{{1}}})
	if StatusOf(err) != 404 {
		t.Fatalf("err = %v, want 404", err)
	}
	if n := hits.Load(); n != 101 {
		t.Errorf("404 burned %d attempts, want exactly 1", n-100)
	}
}

// TestClientTenantHeader checks tenant stamping: client default,
// per-request override, and the ForTenant derivation.
func TestClientTenantHeader(t *testing.T) {
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get(server.TenantHeader))
		fmt.Fprint(w, `{"x":[[1]]}`)
	}))
	defer ts.Close()

	ctx := context.Background()
	lower := true
	req := func() *Request { return &Request{Fp: "00000000000000aa", Lower: &lower, B: [][]float64{{1}}} }

	c := New(ts.URL, WithTenant("acme", "latency"))
	if _, err := c.Do(ctx, req()); err != nil {
		t.Fatal(err)
	}
	if got.Load() != "acme;class=latency" {
		t.Errorf("default tenant header = %q", got.Load())
	}

	r := req()
	r.Tenant, r.Class = "umbrella", ""
	if _, err := c.Do(ctx, r); err != nil {
		t.Fatal(err)
	}
	if got.Load() != "umbrella" {
		t.Errorf("per-request override header = %q", got.Load())
	}

	if _, err := c.ForTenant("initech", "batch").Do(ctx, req()); err != nil {
		t.Fatal(err)
	}
	if got.Load() != "initech;class=batch" {
		t.Errorf("ForTenant header = %q", got.Load())
	}
}

// TestFactorLifecycle drives the recurring idiom end to end against a
// real server: full registration, by-fp resubmission, 404 fallback
// after the server loses the factor, and a drift step advancing the
// fingerprint.
func TestFactorLifecycle(t *testing.T) {
	s := startServer(t, server.Config{Procs: 1})
	ctx := context.Background()
	c := New("http://" + s.Addr())
	f := NewFactor(testLower(5), true)
	b := testRHS(f.N())

	if f.Fp() != "" {
		t.Fatalf("fresh factor fp = %q, want empty", f.Fp())
	}
	r1, err := f.Solve(ctx, c, b)
	if err != nil {
		t.Fatal(err)
	}
	if f.Fp() == "" || f.Fp() != r1.Fp {
		t.Fatalf("fp not committed: factor %q, response %q", f.Fp(), r1.Fp)
	}
	if _, err := f.Solve(ctx, c, b); err != nil {
		t.Fatalf("by-fp resubmission: %v", err)
	}

	// A fresh server has never seen the fingerprint: Factor.Solve must
	// absorb the 404 with a full ship against the new address.
	s2 := startServer(t, server.Config{Procs: 1})
	c2 := New("http://" + s2.Addr())
	if _, err := f.Solve(ctx, c2, b); err != nil {
		t.Fatalf("fallback full ship on unknown server: %v", err)
	}

	// SolveFull never commits: state is unchanged by design.
	before := f.Fp()
	if _, err := f.SolveFull(ctx, c, b); err != nil {
		t.Fatal(err)
	}
	if f.Fp() != before {
		t.Errorf("SolveFull moved the fingerprint %q -> %q", before, f.Fp())
	}
}

// TestFactorDrift advances a registered factor with base_fp+edits and
// checks the snapshot/commit discipline: the fingerprint moves with the
// structure, and a drift against a server that lost the base falls
// back to a full ship of the edited matrix.
func TestFactorDrift(t *testing.T) {
	s := startServer(t, server.Config{Procs: 1})
	ctx := context.Background()
	c := New("http://" + s.Addr())
	f := NewFactor(testLower(6), true)
	b := testRHS(f.N())

	if _, err := f.Solve(ctx, c, b); err != nil {
		t.Fatal(err)
	}
	st := f.State()
	if st.Fp == "" || st.Cur == nil {
		t.Fatalf("state after registration = %+v", st)
	}
	rng := rand.New(rand.NewSource(3))
	edits := synthetic.DriftLower(rng, st.Cur, nil, 3, 0.3)
	if len(edits) == 0 {
		t.Skip("structure admits no drift edits")
	}
	resp, fellBack, err := f.Drift(ctx, c, st, edits, b)
	if err != nil {
		t.Fatal(err)
	}
	if fellBack {
		t.Error("drift against the registering server should not fall back")
	}
	if resp.Fp == "" || resp.Fp == st.Fp {
		t.Errorf("drift fp = %q (base %q), want a new fingerprint", resp.Fp, st.Fp)
	}
	if f.Fp() != resp.Fp {
		t.Errorf("factor fp = %q, want committed drift fp %q", f.Fp(), resp.Fp)
	}

	// A server that never saw the base must trigger the full-ship
	// fallback — same answer, honest fellBack flag.
	s2 := startServer(t, server.Config{Procs: 1})
	c2 := New("http://" + s2.Addr())
	st2 := f.State()
	edits2 := synthetic.DriftLower(rng, st2.Cur, nil, 2, 0.3)
	if len(edits2) == 0 {
		t.Skip("drifted structure admits no further edits")
	}
	if _, fellBack, err = f.Drift(ctx, c2, st2, edits2, b); err != nil {
		t.Fatal(err)
	}
	if !fellBack {
		t.Error("drift against a cold server must report the full-ship fallback")
	}
}

// TestClientEndpoints covers the non-solve surface: Stats, Healthy,
// GetJSON, PostJSON and the raw Post leg, against a real server.
func TestClientEndpoints(t *testing.T) {
	s := startServer(t, server.Config{Procs: 1})
	ctx := context.Background()
	c := New("http://" + s.Addr())

	if got, want := c.BaseURL(), "http://"+s.Addr(); got != want {
		t.Errorf("BaseURL = %q, want %q", got, want)
	}
	if c.Wire() != WireJSON {
		t.Errorf("default wire = %q, want %q", c.Wire(), WireJSON)
	}
	if !c.Healthy(ctx) {
		t.Error("running server reported unhealthy")
	}
	f := NewFactor(testLower(4), true)
	if _, err := f.Solve(ctx, c, testRHS(f.N())); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Accepted == 0 {
		t.Errorf("stats report %d accepted requests after a solve", st.Accepted)
	}

	var plans server.ShardPlansResponse
	if err := c.GetJSON(ctx, "/v1/shard/plans?limit=4", &plans); err != nil {
		t.Fatal(err)
	}
	if len(plans.Plans) == 0 {
		t.Fatal("shard enumeration is empty after a registration")
	}
	var sf server.ShardFactor
	if err := c.GetJSON(ctx, "/v1/shard/factor?fp="+plans.Plans[0].Fp, &sf); err != nil {
		t.Fatal(err)
	}
	if err := c.GetJSON(ctx, "/v1/shard/factor?fp=ffffffffffffffff", &sf); StatusOf(err) != 404 {
		t.Errorf("unknown shard factor err = %v, want 404", err)
	}

	// Round-trip the factor into a second server via the raw JSON legs.
	s2 := startServer(t, server.Config{Procs: 1})
	c2 := New("http://" + s2.Addr())
	if err := c2.PostJSON(ctx, "/v1/shard/warm", sf, nil); err != nil {
		t.Fatalf("warm replay: %v", err)
	}
	lower := true
	if _, err := c2.Solve(ctx, &Request{Fp: f.Fp(), Lower: &lower, B: testRHS(f.N())}); err != nil {
		t.Errorf("by-fp solve after warm replay: %v", err)
	}

	// The raw Post leg relays a pre-encoded body untouched.
	body, err := json.Marshal(&Request{Fp: f.Fp(), Lower: &lower, B: testRHS(f.N())})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Post(ctx, "/v1/trisolve", "application/json", "acme", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("raw Post status = %d, want 200", resp.StatusCode)
	}
}

// TestClientOptions pins the constructor options and the APIError
// rendering (both ends of the error contract are string-visible).
func TestClientOptions(t *testing.T) {
	hc := &http.Client{Timeout: 3 * time.Second}
	c := New("http://example.invalid", WithTimeout(time.Second), WithHTTPClient(hc))
	if c.BaseURL() != "http://example.invalid" {
		t.Errorf("BaseURL = %q", c.BaseURL())
	}
	e := &APIError{Status: 503, Msg: "draining"}
	if got := e.Error(); got != "server: status 503: draining" {
		t.Errorf("APIError.Error() = %q", got)
	}
	if got := (&APIError{Status: 404}).Error(); got != "server: status 404" {
		t.Errorf("bare APIError.Error() = %q", got)
	}
}
