// Package client is the exported, typed client for the doconsider
// serving tier. It is the one place request encoding lives: both wire
// formats (JSON with base64-packed right-hand sides, and the DCWF
// binary frame), tenant/class identification, trace-ID propagation,
// and the error contract (typed *APIError carrying the status, the
// server's message, the echoed trace ID and any Retry-After hint).
//
// Everything in the repo that talks to a server goes through this
// package: the load generator (cmd/loops loadgen), the worked example
// (examples/server) and the distributed front door's backend legs
// (internal/router). A Client is cheap and safe for concurrent use;
// derive per-tenant clients with Client.ForTenant.
//
// The recurring-traffic idioms — register a factor once, resubmit by
// content fingerprint, fall back to a full ship when the server evicted
// it, and evolve the structure with base_fp+edits drift requests — are
// packaged in Factor (see factor.go), which keeps the fingerprint/
// matrix pair consistent under concurrent drift.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"doconsider/internal/server"
)

// Wire selects the request encoding.
type Wire string

const (
	// WireJSON posts application/json bodies with right-hand sides
	// packed as base64 little-endian float64 (b_b64).
	WireJSON Wire = "json"
	// WireBinary posts DCWF frames (Content-Type
	// application/x-doconsider-frame) that the server decodes zero-copy
	// into pooled arena memory.
	WireBinary Wire = "binary"
)

// Re-exported request/response types: the client speaks the server's
// own schema, so callers never translate between parallel structs.
type (
	// Request is a triangular-solve submission (POST /v1/trisolve).
	Request = server.SolveRequest
	// Response is the solve reply on either wire.
	Response = server.SolveResponse
	// Stats is the GET /v1/stats snapshot.
	Stats = server.StatsResponse
)

// APIError is a non-2xx reply from the server: the tier's error
// contract made typed. Transport failures (connection refused, timeout)
// are NOT APIErrors — they surface as the underlying *url.Error, which
// is how callers distinguish "the server said no" from "no server".
type APIError struct {
	Status     int           // HTTP status code
	Msg        string        // server's error message
	TraceID    string        // echoed trace ID, when the server minted one
	RetryAfter time.Duration // parsed Retry-After hint; 0 when absent
}

func (e *APIError) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("server: status %d", e.Status)
	}
	return fmt.Sprintf("server: status %d: %s", e.Status, e.Msg)
}

// Overloaded reports whether the error is an honest-shedding reply
// (429 admission shed or 503 drain) that a caller may retry after the
// advisory delay rather than treat as a failure.
func (e *APIError) Overloaded() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// StatusOf extracts the HTTP status from an error, or 0 when err is not
// an *APIError (transport failure, encoding error, nil).
func StatusOf(err error) int {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status
	}
	return 0
}

// Client posts requests to one doconsider server (or front door — the
// router speaks the same surface). The zero value is not usable; create
// with New.
type Client struct {
	base    string
	httpc   *http.Client
	wire    Wire
	tenant  string
	class   string // "latency" or "batch"; "" lets the server default
	retries int
	backoff time.Duration
}

// Option configures a Client at construction.
type Option func(*Client)

// WithWire selects the request encoding (default WireJSON).
func WithWire(w Wire) Option { return func(c *Client) { c.wire = w } }

// WithHTTPClient substitutes the underlying *http.Client (connection
// pool, timeout, transport). Clients derived with ForTenant share it.
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.httpc = h } }

// WithTimeout sets a per-request timeout on the default http.Client.
// Ignored if WithHTTPClient is also given (set the timeout there).
func WithTimeout(d time.Duration) Option { return func(c *Client) { c.httpc.Timeout = d } }

// WithTenant stamps every request with a tenant identity and priority
// class ("latency" or "batch"; empty class defaults server-side to
// batch). Requests that carry their own Tenant field override this.
func WithTenant(name, class string) Option {
	return func(c *Client) { c.tenant, c.class = name, class }
}

// WithRetry enables Solve's bounded retry of overload replies (429/503)
// and transport errors: up to max extra attempts, sleeping the server's
// Retry-After when it gave one and an exponential backoff from base
// otherwise. Do never retries regardless.
func WithRetry(max int, base time.Duration) Option {
	return func(c *Client) { c.retries, c.backoff = max, base }
}

// New builds a client for the server at baseURL (e.g.
// "http://127.0.0.1:8080"; a trailing slash is trimmed).
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:    strings.TrimRight(baseURL, "/"),
		httpc:   &http.Client{},
		wire:    WireJSON,
		backoff: 50 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// ForTenant returns a shallow copy of c that identifies as the given
// tenant/class, sharing the underlying http.Client and its connection
// pool. This is how a pool of per-tenant workers rides one transport.
func (c *Client) ForTenant(name, class string) *Client {
	d := *c
	d.tenant, d.class = name, class
	return &d
}

// BaseURL returns the server address the client was built with.
func (c *Client) BaseURL() string { return c.base }

// Wire returns the configured request encoding.
func (c *Client) Wire() Wire { return c.wire }

// tenantHeaderValue renders the effective tenant identity for a request
// in X-Doconsider-Tenant form ("name" or "name;class=latency"), or ""
// for untagged traffic.
func (c *Client) tenantHeaderValue(req *Request) string {
	name, class := c.tenant, c.class
	if req != nil && req.Tenant != "" {
		name, class = req.Tenant, req.Class
	}
	if name == "" {
		return ""
	}
	if class == "" {
		return name
	}
	return name + ";class=" + class
}

// Do posts one solve request and decodes the reply. Non-2xx statuses
// return a nil response and an *APIError; transport failures return the
// underlying error. Do never mutates req (the JSON wire packs B into
// b_b64 on a copy) and never retries — use Solve for the retry policy.
func (c *Client) Do(ctx context.Context, req *Request) (*Response, error) {
	if c.wire == WireBinary {
		return c.doFrame(ctx, req)
	}
	return c.doJSON(ctx, req)
}

// Solve is Do plus the client's retry policy: overload replies
// (429/503) and transport errors are retried up to WithRetry's budget,
// honoring the server's Retry-After hint when it gave one. With no
// WithRetry option Solve is exactly Do.
func (c *Client) Solve(ctx context.Context, req *Request) (*Response, error) {
	resp, err := c.Do(ctx, req)
	for attempt := 0; attempt < c.retries && err != nil; attempt++ {
		var ae *APIError
		delay := c.backoff << attempt
		if errors.As(err, &ae) {
			if !ae.Overloaded() {
				return nil, err // 4xx/5xx that retrying cannot fix
			}
			if ae.RetryAfter > delay {
				delay = ae.RetryAfter
			}
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		resp, err = c.Do(ctx, req)
	}
	return resp, err
}

func (c *Client) doJSON(ctx context.Context, req *Request) (*Response, error) {
	// Work on a copy: packing B into b_b64 must not scribble on the
	// caller's request (they may resubmit it).
	r := *req
	if len(r.B) > 0 {
		packed := make([][]byte, len(r.B))
		for j, row := range r.B {
			packed[j] = server.PackFloats(row)
		}
		r.B64, r.B = packed, nil
	}
	body, err := json.Marshal(&r)
	if err != nil {
		return nil, err
	}
	resp, err := c.post(ctx, "/v1/trisolve", "application/json", c.tenantHeaderValue(req), body)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiErrorFromJSON(resp)
	}
	var sr Response
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("decoding response: %w", err)
	}
	return &sr, nil
}

// doFrame posts the request as a DCWF frame. Errors raised before the
// server's frame handler takes over (admission 429, drain 503) arrive
// as JSON bodies; the response Content-Type says which decoder applies.
// The tenant rides twice on purpose: the header drives admission (read
// before the body) and the frame's tenant section attributes the solve
// after decode.
func (c *Client) doFrame(ctx context.Context, req *Request) (*Response, error) {
	r := *req
	if r.Tenant == "" && c.tenant != "" {
		r.Tenant, r.Class = c.tenant, c.class
	}
	body, err := server.EncodeRequestFrame(&r)
	if err != nil {
		return nil, err
	}
	resp, err := c.post(ctx, "/v1/trisolve", server.FrameContentType, c.tenantHeaderValue(req), body)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), server.FrameContentType) {
		return nil, apiErrorFromJSON(resp)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	wr, err := server.DecodeResponseFrame(raw)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &APIError{
			Status:     resp.StatusCode,
			Msg:        wr.ErrMsg,
			TraceID:    wr.TraceID,
			RetryAfter: parseRetryAfter(resp.Header),
		}
	}
	return &Response{
		X: wr.X, Fp: wr.Fp, Fused: wr.Fused, Width: wr.Width,
		Strategy: wr.Strategy, Executed: wr.Executed, TraceID: wr.TraceID,
	}, nil
}

// post issues one POST with the wire headers set. The caller owns the
// response body.
func (c *Client) post(ctx context.Context, path, contentType, tenant string, body []byte) (*http.Response, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", contentType)
	if tenant != "" {
		hreq.Header.Set(server.TenantHeader, tenant)
	}
	return c.httpc.Do(hreq)
}

// Post is the raw escape hatch for callers that relay bodies verbatim
// (the router's forward leg): one POST to path with the given
// Content-Type and optional pre-rendered tenant header value, returning
// the raw *http.Response. The caller owns the body.
func (c *Client) Post(ctx context.Context, path, contentType, tenant string, body []byte) (*http.Response, error) {
	return c.post(ctx, path, contentType, tenant, body)
}

// Stats fetches the server's /v1/stats snapshot.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	err := c.GetJSON(ctx, "/v1/stats", &st)
	return st, err
}

// Healthy probes /healthz: true only for a 200 (a draining server
// answers 503 and counts as unhealthy).
func (c *Client) Healthy(ctx context.Context) bool {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.httpc.Do(hreq)
	if err != nil {
		return false
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// GetJSON fetches path and decodes the JSON reply into out. Non-2xx
// replies return an *APIError built from the server's error envelope.
func (c *Client) GetJSON(ctx context.Context, path string, out any) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpc.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return apiErrorFromJSON(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// PostJSON posts in as JSON to path and decodes the reply into out
// (out may be nil to discard it).
func (c *Client) PostJSON(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := c.post(ctx, path, "application/json", "", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return apiErrorFromJSON(resp)
	}
	if out == nil {
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// apiErrorFromJSON drains a non-2xx response into an *APIError using
// the server's JSON error envelope {"error": ..., "trace_id": ...}. An
// undecodable body still yields a status-only APIError.
func apiErrorFromJSON(resp *http.Response) *APIError {
	var e struct {
		Error   string `json:"error"`
		TraceID string `json:"trace_id"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&e)
	_, _ = io.Copy(io.Discard, resp.Body)
	return &APIError{
		Status:     resp.StatusCode,
		Msg:        e.Error,
		TraceID:    e.TraceID,
		RetryAfter: parseRetryAfter(resp.Header),
	}
}

// parseRetryAfter reads the delay-seconds form of Retry-After (the only
// form the server emits).
func parseRetryAfter(h http.Header) time.Duration {
	raw := h.Get("Retry-After")
	if raw == "" {
		return 0
	}
	secs, err := strconv.Atoi(raw)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
