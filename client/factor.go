package client

import (
	"context"
	"sync"
	"sync/atomic"

	"doconsider/internal/sparse"
)

// Factor is the client-side handle for a recurring triangular factor:
// it remembers the server-assigned content fingerprint after the first
// full submission, resubmits by fingerprint thereafter, falls back to a
// full ship when the server evicted the factor (404), and evolves the
// structure with base_fp+edits drift requests — keeping the local
// matrix and the stored fingerprint consistent under concurrent use.
//
// The lock is held only to snapshot and to commit, never across a
// network round trip: concurrent drifts of one factor race freely and
// the loser's local update is simply dropped (the server answered it
// correctly either way), so fingerprint readers on the recurring path
// block for pointer copies at most.
type Factor struct {
	lower bool

	fp atomic.Pointer[string]

	mu  sync.Mutex
	cur *sparse.CSR
}

// NewFactor wraps a triangular CSR factor. The matrix is referenced,
// not copied; drift steps replace it rather than mutate it in place.
func NewFactor(l *sparse.CSR, lower bool) *Factor {
	return &Factor{lower: lower, cur: l}
}

// State is a consistent snapshot of a Factor: the matrix and the
// fingerprint that corresponds to it. Drift edits must be generated
// against a snapshot (not separate Current()/Fp() reads) so a
// concurrent drift cannot slide a newer base under old edits.
type State struct {
	Cur *sparse.CSR
	Fp  string // "" until the factor has been registered server-side
}

// State snapshots the matrix/fingerprint pair under one critical
// section.
func (f *Factor) State() State {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := State{Cur: f.cur}
	if fpp := f.fp.Load(); fpp != nil {
		st.Fp = *fpp
	}
	return st
}

// Fp returns the last committed fingerprint ("" before registration).
func (f *Factor) Fp() string {
	if fpp := f.fp.Load(); fpp != nil {
		return *fpp
	}
	return ""
}

// N returns the current dimension of the factor.
func (f *Factor) N() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cur.N
}

// Solve issues one solve for the factor: by fingerprint when one is
// known (falling back to a full submission if the server evicted it),
// otherwise shipping the full matrix and remembering the returned
// fingerprint for next time.
func (f *Factor) Solve(ctx context.Context, c *Client, b [][]float64) (*Response, error) {
	lower := f.lower
	if fpp := f.fp.Load(); fpp != nil {
		resp, err := c.Solve(ctx, &Request{Fp: *fpp, Lower: &lower, B: b})
		if StatusOf(err) != 404 {
			return resp, err
		}
	}
	f.mu.Lock()
	cur := f.cur
	f.mu.Unlock()
	resp, err := c.Solve(ctx, &Request{
		N: cur.N, RowPtr: cur.RowPtr, ColIdx: cur.ColIdx, Val: cur.Val,
		Lower: &lower, B: b,
	})
	if err == nil && resp.Fp != "" {
		// Commit only if no drift replaced the factor while we were on
		// the wire — the stored fingerprint must always correspond to cur.
		f.mu.Lock()
		if f.cur == cur {
			fp := resp.Fp
			f.fp.Store(&fp)
		}
		f.mu.Unlock()
	}
	return resp, err
}

// SolveFull always ships the whole matrix and never commits a
// fingerprint — the benchmark-honest mode for measuring cold-path
// encode/decode cost.
func (f *Factor) SolveFull(ctx context.Context, c *Client, b [][]float64) (*Response, error) {
	f.mu.Lock()
	cur := f.cur
	f.mu.Unlock()
	lower := f.lower
	return c.Solve(ctx, &Request{
		N: cur.N, RowPtr: cur.RowPtr, ColIdx: cur.ColIdx, Val: cur.Val,
		Lower: &lower, B: b,
	})
}

// Drift solves against a structurally edited version of the snapshot
// st, shipping only base_fp+edits — the wire form of a refactorization
// with a modified drop pattern. If the server no longer holds the base
// (404) the full edited matrix is shipped instead and fellBack reports
// it. On success the factor advances to the edited structure and the
// server's new fingerprint, unless a concurrent drift got there first.
//
// The caller generates edits from st.Cur (see State); st.Fp must be
// non-empty.
func (f *Factor) Drift(ctx context.Context, c *Client, st State, edits []sparse.RowEdit, b [][]float64) (resp *Response, fellBack bool, err error) {
	edited, err := st.Cur.ApplyRowEdits(edits)
	if err != nil {
		return nil, false, err
	}
	lower := f.lower
	resp, err = c.Solve(ctx, &Request{BaseFp: st.Fp, Edits: edits, Lower: &lower, B: b})
	if StatusOf(err) == 404 {
		// Base evicted server-side: ship the drifted matrix whole.
		fellBack = true
		resp, err = c.Solve(ctx, &Request{
			N: edited.N, RowPtr: edited.RowPtr, ColIdx: edited.ColIdx, Val: edited.Val,
			Lower: &lower, B: b,
		})
	}
	if err == nil && resp.Fp != "" {
		f.mu.Lock()
		if f.cur == st.Cur { // nobody drifted the factor while we were on the wire
			f.cur = edited
			fp := resp.Fp
			f.fp.Store(&fp)
		}
		f.mu.Unlock()
	}
	return resp, fellBack, err
}
