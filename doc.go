// Package doconsider is a Go reproduction of "Run-Time Parallelization and
// Scheduling of Loops" (Saltz, Mirchandaney, Baxter; ICASE Report 88-70 /
// SPAA 1989): the doconsider construct and its inspector/executor runtime,
// with global/local wavefront scheduling, pre-scheduled and self-executing
// executors, the PCGPAK-style preconditioned Krylov substrate, the
// Section 4 analytic model, a cost-model multiprocessor simulator that
// stands in for the paper's Encore Multimax/320, and a network serving
// subsystem (internal/server, `loops server`) that exercises the
// inspector/executor amortization under real multi-tenant load: shared
// plan cache, cross-request batch coalescing, admission control, live
// Prometheus metrics and graceful drain.
//
// The inspector is adaptive (internal/planner): unless the caller pins
// an executor kind, plan construction measures the dependence DAG
// (levels, widths, critical-path fraction, dependence distances),
// consults a host-calibrated cost model, optionally ranks wavefronts by
// a reverse Cuthill-McKee ordering from internal/reorder, and picks the
// execution strategy itself — sequential for tiny or chain-like
// structures, pooled for wide ones, doacross when the natural order
// already parallelizes — with bit-identical results under every choice.
// See the "Adaptive planning" section of README.md for the model, the
// per-machine calibration, and the DOCONSIDER_CALIBRATION /
// DOCONSIDER_STRATEGY environment overrides.
//
// Inspection is also incremental (internal/delta): when a structure
// drifts — a few rows gain or lose nonzeros between solves, as under
// adaptive meshing or a refactorization with a modified drop pattern —
// the wavefront levels and schedule of a resident plan are repaired
// through the affected cone instead of re-inspected from scratch, with
// the planner pricing repair against rebuild as its fourth decision.
// The plan cache repairs the nearest resident ancestor on a fingerprint
// miss, core.Runtime exposes Patch/PatchCtx, and the server accepts
// base_fp+edits drift requests; see the "Structural drift" section of
// README.md.
//
// Execution is supernodal where the structure allows (internal/supernode):
// runs of consecutive rows with identical or nested dependence patterns
// fuse into width-capped supernodes, uniform nodes run as unrolled dense
// blocklet kernels, and the schedule runs over compressed levels — fewer
// barriers and busy-waits, bit-identical results. The planner prices the
// fused plan as a fifth candidate, the plan cache keys on fusion identity
// and re-splices partitions under drift, and DOCONSIDER_FUSE /
// trisolve.WithFusion force or disable it; see the "Supernodal
// execution" section of README.md.
//
// Serving scales out behind a consistent-hash front door
// (internal/router, `loops router` / `loops cluster`): requests route
// by structural fingerprint so each replica's plan cache stays hot for
// its shard, drift chains keep their affinity, and ring rebalances
// hand hot plan skeletons to the gaining replica instead of
// cold-starting it. The exported client package is the one typed HTTP
// client for both wire formats — by-fingerprint resubmission, drift
// requests, tenant identity and honest-backoff retry — consumed by the
// load generator, the examples and the router's backend leg alike. See
// the "Cluster serving" section of README.md.
//
// The implementation lives under internal/; see README.md for the package
// map, DESIGN.md for the system inventory and per-experiment index, and
// EXPERIMENTS.md for paper-vs-measured results. bench_test.go in this
// directory regenerates every table and figure as Go benchmarks.
package doconsider
