// Benchmarks regenerating the paper's tables and figures, plus kernel
// benchmarks for the substrate. Each BenchmarkTableN/BenchmarkFigN target
// corresponds to one artifact of the paper's evaluation section; the
// simulator-backed ones report the paper-shaped metrics (times in work
// units, efficiencies) and the executor-backed ones measure real
// goroutine wall time on the host.
package doconsider

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"doconsider/internal/core"
	"doconsider/internal/executor"
	"doconsider/internal/ilu"
	"doconsider/internal/krylov"
	"doconsider/internal/machine"
	"doconsider/internal/problems"
	"doconsider/internal/schedule"
	"doconsider/internal/stencil"
	"doconsider/internal/synthetic"
	"doconsider/internal/tables"
	"doconsider/internal/trisolve"
	"doconsider/internal/wavefront"
)

// --- Table 1: PCGPAK self-executing vs pre-scheduled --------------------

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := tables.Table1(problems.Names(), tables.DefaultProcs, 50)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.PreTime/r.SelfTime, "preOverSelf_"+r.Problem)
			}
		}
	}
}

// BenchmarkTable1Solver measures the real (goroutine) PCGPAK-style solver
// end to end on the host for both executor kinds.
func BenchmarkTable1Solver(b *testing.B) {
	a := stencil.SPE4()
	ones := make([]float64, a.N)
	rhs := make([]float64, a.N)
	for i := range ones {
		ones[i] = 1
	}
	if err := a.MatVec(rhs, ones); err != nil {
		b.Fatal(err)
	}
	for _, kind := range []executor.Kind{executor.SelfExecuting, executor.PreScheduled} {
		b.Run(kind.String(), func(b *testing.B) {
			procs := runtime.GOMAXPROCS(0)
			for i := 0; i < b.N; i++ {
				x := make([]float64, a.N)
				_, err := krylov.Solve(a, x, rhs, krylov.SolverConfig{
					Method: krylov.MethodGMRES, Procs: procs, Kind: kind,
					Opts: krylov.Options{Tol: 1e-8, MaxIter: 200, Restart: 30},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Tables 2 and 3: triangular solve decompositions --------------------

func BenchmarkTable2SelfExecuting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := tables.TriSolveDecomposition(problems.TriSolveNames(),
			tables.DefaultProcs, machine.SelfExecutingSim)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.SymbolicEff, "symbEff_"+r.Problem)
			}
		}
	}
}

func BenchmarkTable3PreScheduled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := tables.TriSolveDecomposition(problems.TriSolveNames(),
			tables.DefaultProcs, machine.PreScheduledSim); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTriSolveExecutors measures real goroutine triangular solves per
// executor/scheduler on the host (the mechanism behind Tables 2-3).
func BenchmarkTriSolveExecutors(b *testing.B) {
	p := problems.MustGet("5-PT")
	n := p.L.N
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1
	}
	procs := runtime.GOMAXPROCS(0)
	cases := []struct {
		name  string
		kind  executor.Kind
		sched trisolve.SchedulerKind
	}{
		{"sequential", executor.Sequential, trisolve.GlobalSched},
		{"selfexec-global", executor.SelfExecuting, trisolve.GlobalSched},
		{"selfexec-local", executor.SelfExecuting, trisolve.LocalSched},
		{"presched-global", executor.PreScheduled, trisolve.GlobalSched},
		{"presched-local", executor.PreScheduled, trisolve.LocalSched},
		{"doacross", executor.SelfExecuting, trisolve.NaturalSched},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			plan, err := trisolve.NewPlan(p.L, true,
				trisolve.WithProcs(procs), trisolve.WithKind(c.kind),
				trisolve.WithScheduler(c.sched))
			if err != nil {
				b.Fatal(err)
			}
			x := make([]float64, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan.Solve(x, rhs)
			}
		})
	}
}

// --- Table 4: projections ------------------------------------------------

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := tables.Table4(problems.TriSolveNames(), []int{16, 32, 64}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 5: local vs global scheduling cost --------------------------

func BenchmarkTable5(b *testing.B) {
	names := append([]string{"SPE2", "SPE5", "5-PT", "9-PT"}, problems.SyntheticNames()...)
	for i := 0; i < b.N; i++ {
		if _, err := tables.Table5(names, tables.DefaultProcs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5Inspector measures the individual inspector stages the
// table reports: sequential sweep, parallel sweep, global and local
// schedule construction.
func BenchmarkTable5Inspector(b *testing.B) {
	p := problems.MustGet("9-PT")
	wf := p.Wf
	b.Run("seq-sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := wavefront.Compute(p.Deps); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("par-sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := wavefront.ComputeParallel(p.Deps, tables.DefaultProcs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("global-schedule", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			schedule.Global(wf, tables.DefaultProcs)
		}
	})
	b.Run("local-schedule", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			schedule.Local(wf, tables.DefaultProcs, schedule.Striped)
		}
	})
}

// --- Figures ------------------------------------------------------------

func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := tables.Figure12(16)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(pts[15].BarrierE, "barrierEff@16")
			b.ReportMetric(pts[15].SelfExecE, "selfEff@16")
		}
	}
}

func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := tables.Figure13(17, 200, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md section 5) -------------------------------------

// BenchmarkAblationPartition compares wrapped vs blocked local partitions
// under self-execution on the mesh problem.
func BenchmarkAblationPartition(b *testing.B) {
	p := problems.MustGet("65mesh")
	costs := machine.MultimaxCosts()
	for _, part := range []schedule.Partition{schedule.Striped, schedule.Blocked} {
		b.Run(part.String(), func(b *testing.B) {
			s := schedule.Local(p.Wf, 16, part)
			var makespan float64
			for i := 0; i < b.N; i++ {
				r, err := machine.SimulateSelfExecuting(s, p.Deps, p.Work, costs)
				if err != nil {
					b.Fatal(err)
				}
				makespan = r.Makespan
			}
			b.ReportMetric(makespan, "makespan")
		})
	}
}

// BenchmarkAblationWorkWeighted compares cardinality-wrapped vs
// work-weighted global dealing on a block problem with non-uniform rows.
func BenchmarkAblationWorkWeighted(b *testing.B) {
	p := problems.MustGet("SPE2")
	costs := machine.MultimaxCosts()
	b.Run("wrapped", func(b *testing.B) {
		s := schedule.Global(p.Wf, 16)
		var makespan float64
		for i := 0; i < b.N; i++ {
			r := machine.SimulatePreScheduled(s, p.Work, costs)
			makespan = r.Makespan
		}
		b.ReportMetric(makespan, "makespan")
	})
	b.Run("byWork", func(b *testing.B) {
		s := schedule.GlobalByWork(p.Wf, p.Work, 16)
		var makespan float64
		for i := 0; i < b.N; i++ {
			r := machine.SimulatePreScheduled(s, p.Work, costs)
			makespan = r.Makespan
		}
		b.ReportMetric(makespan, "makespan")
	})
}

// BenchmarkAblationILULevel shows how fill level moves the executor
// tradeoff: more fill, longer chains, fewer/fatter wavefronts.
func BenchmarkAblationILULevel(b *testing.B) {
	a := stencil.FivePoint(40)
	costs := machine.MultimaxCosts()
	for _, lvl := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("level%d", lvl), func(b *testing.B) {
			pat, err := ilu.Symbolic(a, lvl)
			if err != nil {
				b.Fatal(err)
			}
			fact, err := ilu.NumericSeq(a, pat)
			if err != nil {
				b.Fatal(err)
			}
			l := fact.L()
			deps := wavefront.FromLower(l)
			wf, err := wavefront.Compute(deps)
			if err != nil {
				b.Fatal(err)
			}
			work := problems.RowWork(l)
			s := schedule.Global(wf, 16)
			var ratio float64
			for i := 0; i < b.N; i++ {
				self, err := machine.SimulateSelfExecuting(s, deps, work, costs)
				if err != nil {
					b.Fatal(err)
				}
				pre := machine.SimulatePreScheduled(s, work, costs)
				ratio = pre.Makespan / self.Makespan
			}
			b.ReportMetric(float64(wavefront.NumWavefronts(wf)), "phases")
			b.ReportMetric(ratio, "preOverSelf")
		})
	}
}

// BenchmarkAblationNUMA contrasts the uniform shared-memory model with the
// hierarchical-memory projection (§5.1.3 extension): remote busy-wait
// checks at 10x local cost move the executor crossover.
func BenchmarkAblationNUMA(b *testing.B) {
	p := problems.MustGet("5-PT")
	gs := schedule.Global(p.Wf, 16)
	b.Run("uniform", func(b *testing.B) {
		var self, pre float64
		for i := 0; i < b.N; i++ {
			r, err := machine.SimulateSelfExecuting(gs, p.Deps, p.Work, machine.MultimaxCosts())
			if err != nil {
				b.Fatal(err)
			}
			self = r.Makespan
			pre = machine.SimulatePreScheduled(gs, p.Work, machine.MultimaxCosts()).Makespan
		}
		b.ReportMetric(pre/self, "preOverSelf")
	})
	b.Run("numa", func(b *testing.B) {
		var self, pre float64
		for i := 0; i < b.N; i++ {
			r, err := machine.SimulateSelfExecutingNUMA(gs, p.Deps, p.Work, machine.DefaultNUMACosts())
			if err != nil {
				b.Fatal(err)
			}
			self = r.Makespan
			pre = machine.SimulatePreScheduledNUMA(gs, p.Work, machine.DefaultNUMACosts()).Makespan
		}
		b.ReportMetric(pre/self, "preOverSelf")
	})
}

// BenchmarkAblationMergePhases measures the barrier reduction of the
// reference-[13] phase coalescing on a merging-friendly structure.
func BenchmarkAblationMergePhases(b *testing.B) {
	n := 4096
	adj := make([][]int32, n)
	for i := 1; i < n; i++ {
		if i%16 != 0 {
			adj[i] = []int32{int32(i - 1)}
		}
	}
	deps := wavefront.FromAdjacency(adj)
	wf, err := wavefront.Compute(deps)
	if err != nil {
		b.Fatal(err)
	}
	s := schedule.Local(wf, 8, schedule.Blocked)
	var merged *schedule.Schedule
	for i := 0; i < b.N; i++ {
		merged = schedule.MergePhases(s, deps)
	}
	b.ReportMetric(float64(s.NumPhases), "phasesBefore")
	b.ReportMetric(float64(merged.NumPhases), "phasesAfter")
}

// --- Kernel benchmarks ----------------------------------------------------

func BenchmarkMatVec(b *testing.B) {
	p := problems.MustGet("5-PT")
	x := make([]float64, p.A.N)
	y := make([]float64, p.A.N)
	for i := range x {
		x[i] = 1
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := p.A.MatVec(y, x); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		procs := runtime.GOMAXPROCS(0)
		for i := 0; i < b.N; i++ {
			if err := p.A.MatVecParallel(y, x, procs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkWavefrontSweep(b *testing.B) {
	p := problems.MustGet("L5-PT")
	b.ReportMetric(float64(p.Deps.N), "indices")
	for i := 0; i < b.N; i++ {
		if _, err := wavefront.Compute(p.Deps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkILUFactorization(b *testing.B) {
	a := stencil.FivePoint(63)
	for _, lvl := range []int{0, 1} {
		b.Run(fmt.Sprintf("symbolic-level%d", lvl), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ilu.Symbolic(a, lvl); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	pat, err := ilu.Symbolic(a, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("numeric-seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ilu.NumericSeq(a, pat); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("numeric-parallel", func(b *testing.B) {
		procs := runtime.GOMAXPROCS(0)
		for i := 0; i < b.N; i++ {
			if _, _, err := ilu.NumericParallel(a, pat, procs,
				executor.SelfExecuting, ilu.GlobalSchedule); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSimpleLoop(b *testing.B) {
	const n = 100000
	rng := rand.New(rand.NewSource(1))
	ia := make([]int32, n)
	coeff := make([]float64, n)
	x := make([]float64, n)
	for i := range ia {
		ia[i] = int32(rng.Intn(n))
		coeff[i] = 0.1
		x[i] = 1
	}
	b.Run("inspector", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.NewSimpleLoop(ia, core.WithProcs(runtime.GOMAXPROCS(0))); err != nil {
				b.Fatal(err)
			}
		}
	})
	loop, err := core.NewSimpleLoop(ia, core.WithProcs(runtime.GOMAXPROCS(0)))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("executor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			loop.Run(x, coeff)
		}
	})
}

// BenchmarkRuntimeRepeatedRun measures the full core.Runtime.Run wrapper
// path (strategy dispatch + executor) under repeated invocation — the
// acceptance experiment for the pooled executor: after warm-up, pooled
// Runtime.Run must report 0 allocs/op and spawn no goroutines. Processor
// count is fixed at 4 so the parallel paths run even on 1-CPU hosts.
func BenchmarkRuntimeRepeatedRun(b *testing.B) {
	a := stencil.Laplace2D(120, 120)
	deps := wavefront.FromLower(a)
	body := func(int32) {}
	for _, kind := range []executor.Kind{executor.SelfExecuting, executor.Pooled} {
		b.Run(kind.String(), func(b *testing.B) {
			rt, err := core.New(deps, core.WithProcs(4), core.WithExecutor(kind))
			if err != nil {
				b.Fatal(err)
			}
			defer rt.Close()
			rt.Run(body) // warm-up: pooled spawns its workers here
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rt.Run(body)
			}
		})
	}
}

func BenchmarkSyntheticGenerator(b *testing.B) {
	cfg := synthetic.Config{Mesh: 65, Degree: 4, Distance: 3, Seed: 1}
	for i := 0; i < b.N; i++ {
		synthetic.Generate(cfg)
	}
}

func BenchmarkGMRESIteration(b *testing.B) {
	a := stencil.FivePoint(40)
	rhs := make([]float64, a.N)
	for i := range rhs {
		rhs[i] = 1
	}
	prec, err := krylov.NewILUPrec(a, krylov.ILUPrecOptions{
		Level: 0, Procs: runtime.GOMAXPROCS(0), Kind: executor.SelfExecuting,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		x := make([]float64, a.N)
		if _, err := krylov.GMRES(a, x, rhs, prec,
			krylov.Options{Tol: 1e-8, MaxIter: 100, Restart: 20,
				Procs: runtime.GOMAXPROCS(0)}); err != nil {
			b.Fatal(err)
		}
	}
}
